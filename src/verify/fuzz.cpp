#include "verify/fuzz.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "sim/replay.hpp"
#include "sim/simulator.hpp"
#include "verify/engine.hpp"
#include "verify/parallel.hpp"
#include "verify/verifier.hpp"

namespace vmn::verify {

namespace {

/// splitmix64 finalizer: spreads (sweep seed, spec index) over the whole
/// seed space so adjacent sweeps do not share generator streams.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t i) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (i + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

VerifyOptions baseline_options(const FuzzOptions& options, int budget) {
  VerifyOptions vo;  // defaults: slices + inference + warm on, no cache
  vo.max_failures = budget;
  vo.solver = options.solver;
  return vo;
}

std::string invariant_label(const io::Spec& spec, std::size_t i) {
  const net::Network& net = spec.model.network();
  return spec.invariants[i].describe(
      [&](NodeId n) { return net.name(n); });
}

/// First verdict disagreement between two aligned result vectors, skipping
/// invariants either side answered `unknown` (timeouts are not soundness).
std::optional<std::string> diff_results(const io::Spec& spec,
                                        const std::vector<VerifyResult>& a,
                                        const std::vector<VerifyResult>& b,
                                        const std::string& what) {
  if (a.size() != b.size()) {
    return what + ": result count mismatch (" + std::to_string(a.size()) +
           " vs " + std::to_string(b.size()) + ")";
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].outcome == Outcome::unknown || b[i].outcome == Outcome::unknown) {
      continue;
    }
    if (a[i].outcome != b[i].outcome) {
      return what + " disagree on invariant " + std::to_string(i) + " (" +
             invariant_label(spec, i) + "): " + to_string(a[i].outcome) +
             " vs " + to_string(b[i].outcome);
    }
  }
  return std::nullopt;
}

std::optional<std::string> oracle_engines(io::Spec& spec,
                                          const VerifyOptions& vo,
                                          const BatchResult& baseline,
                                          const FuzzOptions& options) {
  ParallelOptions po;
  po.jobs = options.jobs;
  po.verify = vo;
  const auto threads = Engine(spec.model, po).run_batch(
      spec.invariants);
  if (auto d = diff_results(spec, baseline.results, threads.results,
                            "sequential vs thread backend")) {
    return d;
  }
  po.backend = Backend::process;
  po.process.worker_command = options.worker_command;
  const auto procs = Engine(spec.model, po).run_batch(
      spec.invariants);
  return diff_results(spec, baseline.results, procs.results,
                      "sequential vs process backend");
}

std::optional<std::string> oracle_warm_cold(io::Spec& spec,
                                            const VerifyOptions& vo,
                                            const BatchResult& baseline,
                                            const FuzzOptions& options) {
  VerifyOptions cold = vo;
  cold.warm_solving = false;
  const auto seq_cold =
      Engine(spec.model, cold).run_batch(spec.invariants, true);
  if (auto d = diff_results(spec, baseline.results, seq_cold.results,
                            "warm vs cold (sequential)")) {
    return d;
  }
  // The parallel warm path rebinds jobs onto isomorphic representatives'
  // live encodings; cold never does. Comparing parallel-cold against the
  // (engine-checked) warm baseline is the iso-rebound == plain oracle.
  ParallelOptions po;
  po.jobs = options.jobs;
  po.verify = cold;
  const auto par_cold = Engine(spec.model, po).run_batch(
      spec.invariants);
  return diff_results(spec, baseline.results, par_cold.results,
                      "warm vs cold (parallel)");
}

std::optional<std::string> oracle_iso_verdict(io::Spec& spec,
                                              const VerifyOptions& vo,
                                              const BatchResult& baseline,
                                              const FuzzOptions& options) {
  // Verdict-level equivalence-class merging (one solver call fanned out to
  // every problem-key-equal binding) against the merge-free run that solves
  // each planned job itself: replayed verdicts must be indistinguishable
  // from solved ones on both engines.
  VerifyOptions unmerged = vo;
  unmerged.merge_isomorphic = false;
  const auto seq =
      Engine(spec.model, unmerged).run_batch(spec.invariants, true);
  if (auto d = diff_results(spec, baseline.results, seq.results,
                            "merged vs unmerged (sequential)")) {
    return d;
  }
  ParallelOptions po;
  po.jobs = options.jobs;
  po.verify = unmerged;
  const auto par = Engine(spec.model, po).run_batch(spec.invariants);
  return diff_results(spec, baseline.results, par.results,
                      "merged vs unmerged (parallel)");
}

std::optional<std::string> oracle_symmetry(io::Spec& spec,
                                           const VerifyOptions& vo,
                                           const BatchResult& baseline) {
  const auto plain =
      Engine(spec.model, vo).run_batch(spec.invariants, false);
  return diff_results(spec, baseline.results, plain.results,
                      "symmetry vs no-symmetry");
}

std::optional<std::string> oracle_slices(io::Spec& spec,
                                         const VerifyOptions& vo,
                                         const BatchResult& baseline) {
  VerifyOptions whole = vo;
  whole.use_slices = false;
  const auto full =
      Engine(spec.model, whole).run_batch(spec.invariants, true);
  return diff_results(spec, baseline.results, full.results,
                      "sliced vs whole-network");
}

std::optional<std::string> oracle_replay(io::Spec& spec, int budget,
                                         const BatchResult& baseline,
                                         FuzzReport* stats) {
  const bool strict = sim::replay_is_strict(spec.model);
  for (std::size_t i = 0; i < spec.invariants.size(); ++i) {
    const VerifyResult& r = baseline.results[i];
    if (!r.counterexample) continue;
    const encode::Invariant& inv = spec.invariants[i];
    const Outcome witnessed =
        inv.sat_means_holds() ? Outcome::holds : Outcome::violated;
    if (r.outcome != witnessed) continue;
    if (stats) ++stats->replays;
    const auto rr =
        sim::replay_witness(spec.model, inv, *r.counterexample, budget);
    if (rr.realized) {
      if (stats) ++stats->replays_realized;
    } else if (!strict) {
      if (stats) ++stats->replays_advisory;
    } else {
      return "witness for invariant " + std::to_string(i) + " (" +
             invariant_label(spec, i) +
             ") not concretely realizable in any in-budget scenario (" +
             std::to_string(rr.injections) + " injections tried)";
    }
  }
  return std::nullopt;
}

std::optional<std::string> oracle_sim_cross(io::Spec& spec, int budget,
                                            const BatchResult& baseline,
                                            std::uint64_t seed,
                                            FuzzReport* stats) {
  const net::Network& net = spec.model.network();
  const auto hosts = net.hosts();
  if (hosts.size() < 2) return std::nullopt;

  // A seeded concrete schedule: small port pool so flows collide (firewall
  // establishment, cache requester lists), occasional provenance, malice
  // and application-class tags so every oracle axiom gets exercised.
  Rng rng(seed ^ 0x51edc0ffee5c4edeULL);
  std::vector<std::pair<NodeId, Packet>> schedule;
  for (int k = 0; k < 24; ++k) {
    const auto n = static_cast<std::int64_t>(hosts.size());
    const std::size_t si = static_cast<std::size_t>(rng.uniform(0, n - 1));
    std::size_t di = static_cast<std::size_t>(rng.uniform(0, n - 2));
    if (di >= si) ++di;
    const NodeId src = hosts[si];
    Packet p{net.node(src).address, net.node(hosts[di]).address,
             static_cast<std::uint16_t>(rng.uniform(1000, 1004)),
             static_cast<std::uint16_t>(rng.chance(0.3) ? 443 : 80)};
    if (rng.chance(0.5)) p.origin = p.src;
    if (rng.chance(0.15)) p.malicious = true;
    if (rng.chance(0.3)) {
      p.app_class = static_cast<std::uint16_t>(rng.uniform(1, 4));
    }
    schedule.emplace_back(src, p);
  }

  const auto& scenarios = net.scenarios();
  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    if (static_cast<int>(scenarios[si].failed_nodes.size()) > budget) continue;
    sim::Simulator sim(
        spec.model, ScenarioId{static_cast<ScenarioId::underlying_type>(si)});
    for (const auto& [from, p] : schedule) {
      try {
        sim.inject(from, p);
      } catch (const ForwardingLoopError&) {
        // The symbolic model has no hop budget; a looping schedule proves
        // nothing about verdicts, so skip the injection.
      }
    }
    if (stats) ++stats->sim_schedules;
    for (std::size_t i = 0; i < spec.invariants.size(); ++i) {
      const encode::Invariant& inv = spec.invariants[i];
      if (baseline.results[i].outcome == Outcome::unknown) continue;
      if (!sim::trace_violates(sim.trace(), spec.model, inv)) continue;
      // The simulator under-approximates the symbolic model, so anything
      // it realizes the verifier must report.
      const Outcome expected =
          inv.sat_means_holds() ? Outcome::holds : Outcome::violated;
      if (baseline.results[i].outcome != expected) {
        return "simulator realizes invariant " + std::to_string(i) + " (" +
               invariant_label(spec, i) + ") in scenario " +
               scenarios[si].name + " but the verifier says " +
               to_string(baseline.results[i].outcome);
      }
    }
  }
  return std::nullopt;
}

/// The never-flip oracle: the same spec verified under a seeded fault
/// plan must agree with the fault-free baseline on every verdict both
/// sides answered - degradation may only widen verdicts to unknown, and
/// diff_results already skips unknowns, so any surviving disagreement is
/// a real flip. The process backend takes the full chaos plan (crashes,
/// crash-looping jobs, frame corruption/truncation, forced unknowns);
/// the thread backend takes the solver-side plan including persistent
/// timeouts (the faults that exist in one address space).
std::optional<std::string> oracle_faults(io::Spec& spec,
                                         const VerifyOptions& vo,
                                         const BatchResult& baseline,
                                         std::uint64_t seed,
                                         const FuzzOptions& options) {
  if (!options.fault_oracle) return std::nullopt;
  FaultPlan chaos;
  chaos.seed = mix_seed(seed, 0xfa17ull);
  chaos.worker_crash = 0.1;
  chaos.job_crash = 0.15;
  chaos.frame_corrupt = 0.1;
  chaos.frame_truncate = 0.05;
  chaos.solver_unknown = 0.2;
  ParallelOptions po;
  po.jobs = options.jobs;
  po.verify = vo;
  po.verify.faults = chaos;
  po.backend = Backend::process;
  po.process.worker_command = options.worker_command;
  const auto procs =
      Engine(spec.model, po).run_batch(spec.invariants);
  if (auto d = diff_results(spec, baseline.results, procs.results,
                            "fault-free vs faulted process backend")) {
    return d;
  }
  FaultPlan solver_chaos;
  solver_chaos.seed = chaos.seed;
  solver_chaos.solver_unknown = 0.25;
  solver_chaos.solver_timeout = 0.1;
  ParallelOptions to;
  to.jobs = options.jobs;
  to.verify = vo;
  to.verify.faults = solver_chaos;
  const auto threads =
      Engine(spec.model, to).run_batch(spec.invariants);
  return diff_results(spec, baseline.results, threads.results,
                      "fault-free vs faulted thread backend");
}

constexpr std::string_view kVerdictOracles[] = {
    "engines", "warm-cold", "iso-verdict", "symmetry", "slices", "replay",
    "sim-cross", "faults"};

std::optional<std::string> run_oracle(std::string_view name, io::Spec& spec,
                                      int budget, const BatchResult& baseline,
                                      std::uint64_t seed,
                                      const FuzzOptions& options,
                                      FuzzReport* stats) {
  const VerifyOptions vo = baseline_options(options, budget);
  if (name == "engines") return oracle_engines(spec, vo, baseline, options);
  if (name == "warm-cold") {
    return oracle_warm_cold(spec, vo, baseline, options);
  }
  if (name == "iso-verdict") {
    return oracle_iso_verdict(spec, vo, baseline, options);
  }
  if (name == "symmetry") return oracle_symmetry(spec, vo, baseline);
  if (name == "slices") return oracle_slices(spec, vo, baseline);
  if (name == "replay") return oracle_replay(spec, budget, baseline, stats);
  if (name == "sim-cross") {
    return oracle_sim_cross(spec, budget, baseline, seed, stats);
  }
  if (name == "faults") {
    return oracle_faults(spec, vo, baseline, seed, options);
  }
  if (name == "injected") {
    if (options.injected_fault && options.injected_fault(spec)) {
      return std::optional<std::string>{"injected fault hook reports failure"};
    }
    return std::nullopt;
  }
  throw Error("unknown fuzz oracle: " + std::string(name));
}

/// Whether `oracle` still fails on `text` - the shrinker's reproduction
/// check. Any throw (parse error, degenerate model) means the candidate is
/// invalid, i.e. does not reproduce.
bool oracle_fails(std::string_view oracle, const std::string& text,
                  std::uint64_t seed, const FuzzOptions& options) {
  try {
    io::Spec spec = io::parse_spec_string(text);
    const int budget = scenarios::derived_max_failures(spec.model);
    if (oracle == "injected") {
      return options.injected_fault && options.injected_fault(spec);
    }
    if (spec.invariants.empty()) return false;
    const BatchResult baseline =
        Engine(spec.model, baseline_options(options, budget))
            .run_batch(spec.invariants, true);
    return run_oracle(oracle, spec, budget, baseline, seed, options, nullptr)
        .has_value();
  } catch (const std::exception&) {
    return false;
  }
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool blank(const std::string& line) {
  return line.find_first_not_of(" \t") == std::string::npos;
}

std::string first_word(const std::string& line) {
  const auto b = line.find_first_not_of(" \t");
  if (b == std::string::npos) return {};
  auto e = line.find_first_of(" \t", b);
  if (e == std::string::npos) e = line.size();
  return line.substr(b, e - b);
}

/// A removable unit of spec text: one top-level line, or a whole
/// block-structured section (firewall/cache/scenario ... end). Shrinking
/// works on the serialized text, never on a re-serialized model: write o
/// parse is not idempotent for scenario route tables (the writer emits
/// effective tables), so text is the only stable representation.
struct Chunk {
  std::vector<std::string> lines;
  bool block = false;
};

std::vector<Chunk> chunk_text(const std::string& text) {
  std::vector<Chunk> chunks;
  const auto lines = split_lines(text);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (blank(lines[i])) continue;
    const std::string head = first_word(lines[i]);
    Chunk c;
    c.lines.push_back(lines[i]);
    if (head == "firewall" || head == "cache" || head == "scenario") {
      c.block = true;
      while (++i < lines.size()) {
        c.lines.push_back(lines[i]);
        if (first_word(lines[i]) == "end") break;
      }
    }
    chunks.push_back(std::move(c));
  }
  return chunks;
}

std::string join_chunks(const std::vector<Chunk>& chunks) {
  std::string out;
  for (const Chunk& c : chunks) {
    for (const std::string& line : c.lines) {
      out += line;
      out += '\n';
    }
  }
  return out;
}

std::size_t count_spec_lines(const std::string& text) {
  std::size_t n = 0;
  for (const std::string& line : split_lines(text)) {
    if (!blank(line) && first_word(line)[0] != '#') ++n;
  }
  return n;
}

}  // namespace

std::string shrink_reproducer(const std::string& text,
                              const std::string& oracle, std::uint64_t seed,
                              const FuzzOptions& options) {
  std::vector<Chunk> chunks = chunk_text(text);
  std::size_t checks = 0;
  const auto fails = [&](const std::vector<Chunk>& candidate) {
    ++checks;
    return oracle_fails(oracle, join_chunks(candidate), seed, options);
  };

  // Phase 1: greedy chunk removal to a fixpoint - dropping a host can make
  // a route droppable that was not before, so one pass is not enough.
  bool changed = true;
  while (changed && checks < options.max_shrink_checks) {
    changed = false;
    for (std::size_t i = 0;
         i < chunks.size() && checks < options.max_shrink_checks; ++i) {
      std::vector<Chunk> candidate = chunks;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (candidate.empty()) continue;
      if (fails(candidate)) {
        chunks = std::move(candidate);
        changed = true;
        --i;
      }
    }
  }

  // Phase 2: inner lines of surviving blocks (firewall entries, cache ACL
  // entries, scenario route overrides) - header and `end` stay.
  for (Chunk& c : chunks) {
    if (!c.block || c.lines.size() < 3) continue;
    for (std::size_t j = 1;
         j + 1 < c.lines.size() && checks < options.max_shrink_checks; ++j) {
      std::vector<Chunk> candidate = chunks;
      Chunk& cc = candidate[static_cast<std::size_t>(&c - chunks.data())];
      cc.lines.erase(cc.lines.begin() + static_cast<std::ptrdiff_t>(j));
      if (fails(candidate)) {
        c.lines.erase(c.lines.begin() + static_cast<std::ptrdiff_t>(j));
        --j;
      }
    }
  }
  return join_chunks(chunks);
}

std::size_t check_spec_text(const std::string& text, std::uint64_t seed,
                            const FuzzOptions& options, FuzzReport& report) {
  io::Spec spec = io::parse_spec_string(text);
  const int budget = scenarios::derived_max_failures(spec.model);
  report.invariants += spec.invariants.size();

  const std::size_t before = report.failures.size();
  std::optional<BatchResult> baseline;
  if (!spec.invariants.empty()) {
    baseline = Engine(spec.model, baseline_options(options, budget))
                   .run_batch(spec.invariants, true);
    for (std::string_view name : kVerdictOracles) {
      if (auto detail = run_oracle(name, spec, budget, *baseline, seed,
                                   options, &report)) {
        FuzzFailure f;
        f.seed = seed;
        f.oracle = std::string(name);
        f.detail = *detail;
        f.reproducer = text;
        report.failures.push_back(std::move(f));
      }
    }
  }
  if (options.injected_fault && options.injected_fault(spec)) {
    FuzzFailure f;
    f.seed = seed;
    f.oracle = "injected";
    f.detail = "injected fault hook reports failure";
    f.reproducer = text;
    report.failures.push_back(std::move(f));
  }
  return report.failures.size() - before;
}

FuzzReport fuzz(const FuzzOptions& options) {
  FuzzReport report;
  for (int i = 0; i < options.count; ++i) {
    const std::uint64_t spec_seed =
        mix_seed(options.seed, static_cast<std::uint64_t>(i));
    scenarios::RandomSpecParams params = options.size;
    params.seed = spec_seed;
    const scenarios::RandomSpec rs = scenarios::make_random_spec(params);
    ++report.specs;

    const std::size_t first = report.failures.size();
    check_spec_text(rs.text, spec_seed, options, report);
    for (std::size_t f = first; f < report.failures.size(); ++f) {
      FuzzFailure& fail = report.failures[f];
      fail.original_lines = count_spec_lines(fail.reproducer);
      const std::string shrunk =
          shrink_reproducer(fail.reproducer, fail.oracle, fail.seed, options);
      fail.shrunk_lines = count_spec_lines(shrunk);
      std::string header = "# vmn fuzz reproducer\n# seed " +
                           std::to_string(fail.seed) + "  oracle " +
                           fail.oracle + "\n# " + fail.detail + "\n";
      fail.reproducer = header + shrunk;
      if (!options.reproducer_dir.empty()) {
        std::filesystem::create_directories(options.reproducer_dir);
        const auto path = std::filesystem::path(options.reproducer_dir) /
                          ("repro-" + std::to_string(fail.seed) + "-" +
                           fail.oracle + ".vmn");
        std::ofstream out(path);
        out << fail.reproducer;
        fail.reproducer_path = path.string();
      }
    }
  }
  return report;
}

}  // namespace vmn::verify
