#include "verify/solver_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "core/error.hpp"

namespace vmn::verify {

void SolverSession::reset_warm(bool keep_transfers) {
  encoding_.reset();
  solver_.reset();
  esc_encoding_.reset();
  esc_solver_.reset();
  warm_model_ = nullptr;
  warm_members_.clear();
  warm_failures_ = -1;
  if (!keep_transfers) owned_transfers_.reset();
}

SolverSession::WarmBound SolverSession::escalate_bind() {
  if (warm_model_ == nullptr) {
    throw Error("escalate_bind without a preceding warm_bind");
  }
  ++escalations_;
  smt::SolverOptions esc = options_;
  const std::uint64_t mult =
      resilience_.escalation_timeout_mult > 0
          ? resilience_.escalation_timeout_mult
          : 2;
  const std::uint64_t timeout =
      static_cast<std::uint64_t>(options_.timeout_ms) * mult;
  esc.timeout_ms = timeout > 0xffffffffull
                       ? 0xffffffffu
                       : static_cast<std::uint32_t>(timeout);
  // Perturb the random seed: a different exploration order is frequently
  // all a borderline-unknown check needs.
  esc.seed = options_.seed ^ 0x9e3779b9u;
  dataplane::TransferCache* transfers = borrowed_transfers_;
  if (transfers == nullptr) transfers = owned_transfers_.get();
  encode::EncodeOptions eopts;
  eopts.max_failures = warm_failures_;
  eopts.transfers = transfers;
  esc_encoding_ = std::make_unique<encode::Encoding>(
      *warm_model_, warm_members_, eopts);
  encode_transfer_builds_ += esc_encoding_->transfer_builds();
  encode_transfer_reuses_ += esc_encoding_->transfer_reuses();
  esc_solver_ = smt::make_z3_solver(esc_encoding_->vocab(), esc);
  for (const encode::Axiom& axiom : esc_encoding_->axioms()) {
    esc_solver_->add(axiom.term);
  }
  return WarmBound{*esc_encoding_, *esc_solver_, false};
}

SolverSession::WarmBound SolverSession::warm_bind(
    const encode::NetworkModel& model, std::vector<NodeId> members,
    int max_failures) {
  // Normalize exactly like Encoding's constructor so the shape comparison
  // sees what the encoding would.
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  if (warm_ && encoding_ != nullptr && warm_model_ == &model &&
      warm_failures_ == max_failures && warm_members_ == members) {
    ++warm_reuses_;
    return WarmBound{*encoding_, *solver_, true};
  }
  // Per-scenario transfer memo for the new encoding: the borrowed cache
  // when the owner lent one (single-threaded callers only), else a
  // session-owned cache scoped to the model's network - TransferFunction
  // memos are not thread-safe, so each pool worker warms its own.
  dataplane::TransferCache* transfers = borrowed_transfers_;
  if (transfers == nullptr) {
    if (owned_transfers_ == nullptr ||
        &owned_transfers_->network() != &model.network()) {
      owned_transfers_ =
          std::make_unique<dataplane::TransferCache>(model.network());
    }
    transfers = owned_transfers_.get();
  }
  encode::EncodeOptions eopts;
  eopts.max_failures = max_failures;
  eopts.transfers = transfers;
  encoding_ =
      std::make_unique<encode::Encoding>(model, std::move(members), eopts);
  encode_transfer_builds_ += encoding_->transfer_builds();
  encode_transfer_reuses_ += encoding_->transfer_reuses();
  warm_model_ = &model;
  warm_failures_ = max_failures;
  warm_members_ = encoding_->members();
  solver_ = smt::make_z3_solver(encoding_->vocab(), options_);
  for (const encode::Axiom& axiom : encoding_->axioms()) {
    solver_->add(axiom.term);
  }
  ++binds_;
  return WarmBound{*encoding_, *solver_, false};
}

SolverPool::SolverPool(std::size_t workers, smt::SolverOptions options,
                       bool warm) {
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  sessions_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    sessions_.push_back(std::make_unique<SolverSession>(options, warm));
  }
  stats_.resize(workers);
}

void SolverPool::run(
    std::size_t count,
    const std::function<void(std::size_t, SolverSession&)>& fn) {
  if (count == 0) return;

  std::atomic<std::size_t> cursor{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker_loop = [&](std::size_t worker) {
    SolverSession& session = *sessions_[worker];
    WorkerStats& stats = stats_[worker];
    for (;;) {
      const std::size_t job = cursor.fetch_add(1, std::memory_order_relaxed);
      if (job >= count) return;
      const auto start = std::chrono::steady_clock::now();
      try {
        fn(job, session);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      stats.busy += std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start);
      ++stats.jobs;
    }
  };

  const std::size_t active = std::min(sessions_.size(), count);
  if (active == 1) {
    // Single worker: run inline, in order, on the calling thread.
    worker_loop(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(active);
    for (std::size_t w = 0; w < active; ++w) {
      threads.emplace_back(worker_loop, w);
    }
    for (std::thread& t : threads) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace vmn::verify
