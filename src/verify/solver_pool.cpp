#include "verify/solver_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace vmn::verify {

SolverPool::SolverPool(std::size_t workers, smt::SolverOptions options) {
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  sessions_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    sessions_.push_back(std::make_unique<SolverSession>(options));
  }
  stats_.resize(workers);
}

void SolverPool::run(
    std::size_t count,
    const std::function<void(std::size_t, SolverSession&)>& fn) {
  if (count == 0) return;

  std::atomic<std::size_t> cursor{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker_loop = [&](std::size_t worker) {
    SolverSession& session = *sessions_[worker];
    WorkerStats& stats = stats_[worker];
    for (;;) {
      const std::size_t job = cursor.fetch_add(1, std::memory_order_relaxed);
      if (job >= count) return;
      const auto start = std::chrono::steady_clock::now();
      try {
        fn(job, session);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      stats.busy += std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start);
      ++stats.jobs;
    }
  };

  const std::size_t active = std::min(sessions_.size(), count);
  if (active == 1) {
    // Single worker: run inline, in order, on the calling thread.
    worker_loop(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(active);
    for (std::size_t w = 0; w < active; ++w) {
      threads.emplace_back(worker_loop, w);
    }
    for (std::thread& t : threads) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace vmn::verify
