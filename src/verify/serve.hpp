// `vmn serve` - the long-running incremental re-verification daemon.
//
// Loads a spec once, answers verdict queries over a tiny line protocol,
// watches the file for edits, and on a semantic change re-plans and
// re-solves *only* the slices whose canonical keys changed: the warm
// verify::Engine (solver sessions, PlanContext transfer memos, shape
// representatives) and its record-granular ResultCache persist across
// requests and across reloads, so an edit confined to one segment of a
// chain re-verifies that segment and answers the rest from cache.
//
// Protocol (newline-delimited, one response line per request line):
//
//   STATUS              -> OK generation=G invariants=N holds=H
//                          violated=V unknown=U degraded=0|1 spec=PATH
//   VERDICT <which>     -> OK <holds|violated|unknown> index=I [sym] [cache]
//                          invariant="<description>"
//                          <which> is a 0-based index or the exact
//                          description string STATUS-order printing uses.
//   RELOAD              -> OK reloaded generation=G <diff summary> |
//                          OK unchanged generation=G |
//                          ERR parse: <message>   (old generation serves on)
//   STATS               -> OK <single-line JSON of the unified counters>
//
// Anything else answers `ERR <reason>` and the connection stays up -
// malformed input never kills the daemon.
//
// Layering: ServeState is the socket-free core (load/diff/reload/handle a
// protocol line) driven directly by unit tests; Server wraps it in a
// poll(2) event loop over a Unix socket and/or loopback TCP listener plus
// an inotify watch (Linux) with a content-compare stat-poll fallback, so
// editors that rename-replace and plain `cat >` both wake it.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/spec.hpp"
#include "verify/engine.hpp"

namespace vmn::verify {

struct ServeOptions {
  /// The spec file to load, serve and watch.
  std::string spec_path;
  /// Unix-domain socket to listen on; empty = no Unix listener.
  std::string socket_path;
  /// Loopback TCP port to listen on; -1 = no TCP listener, 0 = ephemeral
  /// (the bound port is reported by Server::tcp_port()).
  int tcp_port = -1;
  /// Edit-poll tick: poll(2) timeout, and (without inotify) how often the
  /// file content is re-read and compared.
  std::chrono::milliseconds poll_interval{500};
  /// Prefer an inotify watch on the spec's directory (Linux). The content
  /// compare still gates reloads, so spurious wakeups are no-ops; when
  /// inotify is unavailable the daemon falls back to pure polling.
  bool use_inotify = true;
  /// Verification configuration (engine.verify.cache_dir enables the
  /// on-disk cache; without one ServeState forces memory_cache so verdicts
  /// still carry across reloads).
  EngineOptions engine;
};

/// Counters the daemon accumulates across its lifetime (per-batch numbers
/// live in the last BatchResult; these survive reloads).
struct ServeStats {
  std::uint64_t generation = 0;   ///< bumped per applied reload
  std::uint64_t batches = 0;      ///< run_batch calls (initial load included)
  std::uint64_t reloads = 0;      ///< semantic reloads applied
  std::uint64_t noop_edits = 0;   ///< file changed, canonical spec did not
  std::uint64_t parse_errors = 0; ///< edits rejected (old generation kept)
  std::uint64_t requests = 0;     ///< protocol lines handled
  std::uint64_t solver_calls = 0; ///< lifetime sum across batches
  std::uint64_t cache_hits = 0;   ///< lifetime sum across batches
};

/// The daemon core, minus sockets: owns the parsed spec, the warm Engine,
/// and the last batch of verdicts. Exact same object the unit tests drive.
class ServeState {
 public:
  /// Loads options.spec_path and runs the initial batch; throws vmn::Error
  /// (or io::ParseError) if the spec is unreadable or malformed - a daemon
  /// only starts from a good generation.
  explicit ServeState(ServeOptions options);

  /// Handles one protocol line, returns one response line (no trailing
  /// newline). Never throws on bad input: malformed lines answer ERR.
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// Re-reads the spec file and applies it if it semantically changed.
  /// Returns true when a reload ran (generation bumped). Unreadable or
  /// unparsable content keeps the current generation serving (the editor
  /// may be mid-save); formatting-only edits count as noop_edits.
  bool check_for_edit();

  [[nodiscard]] const io::Spec& spec() const { return *spec_; }
  [[nodiscard]] const BatchResult& last_batch() const { return last_batch_; }
  [[nodiscard]] const ServeStats& stats() const { return stats_; }
  [[nodiscard]] const ServeOptions& options() const { return options_; }
  [[nodiscard]] Engine& engine() { return *engine_; }
  /// The parse error that rejected the most recent edit ("" when the
  /// current file content is the served generation).
  [[nodiscard]] const std::string& last_error() const { return last_error_; }

 private:
  [[nodiscard]] std::string cmd_status() const;
  [[nodiscard]] std::string cmd_verdict(const std::string& which) const;
  [[nodiscard]] std::string cmd_reload();
  [[nodiscard]] std::string cmd_stats() const;
  /// Parses `text` and swaps it in when it differs semantically.
  /// Returns a human-readable outcome (also the RELOAD response tail).
  enum class Applied { reloaded, unchanged, rejected };
  Applied apply_text(const std::string& text, std::string& detail);
  void run_current();

  ServeOptions options_;
  /// unique_ptr: Engine and BatchResult hold pointers into the model, so
  /// the spec must be stable in memory and swapped atomically on reload.
  std::unique_ptr<io::Spec> spec_;
  std::string spec_text_;  ///< raw file content of the served generation
  /// Most recent content examined (served or rejected): the edit poll
  /// compares against this so a broken save is parsed once, not per tick.
  std::string last_seen_text_;
  std::unique_ptr<Engine> engine_;
  BatchResult last_batch_;
  ServeStats stats_;
  std::string last_error_;
};

/// The socket front end: accepts clients on a Unix socket and/or loopback
/// TCP, buffers lines per client, and wakes ServeState on edits via
/// inotify or the poll tick. Single-threaded - one poll(2) loop multiplexes
/// everything, so ServeState needs no locking.
class Server {
 public:
  /// Binds the listeners (throws vmn::Error when none can be bound) and
  /// loads the spec via ServeState.
  explicit Server(ServeOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Runs the event loop until stop(). Safe to call from a thread.
  void run();
  /// Signals run() to wind down (async-signal-safe: just a flag; the poll
  /// timeout bounds the latency).
  void stop() { stop_ = true; }

  /// The actually-bound TCP port (resolves tcp_port=0), -1 if none.
  [[nodiscard]] int tcp_port() const { return bound_tcp_port_; }
  [[nodiscard]] ServeState& state() { return state_; }

 private:
  struct Client {
    int fd = -1;
    std::string inbuf;
  };
  void setup_listeners();
  void setup_watch();
  void accept_clients(int listen_fd);
  /// Reads, splits lines, answers; returns false when the client is done.
  bool service_client(Client& client);
  void drain_inotify();
  void close_all();

  ServeState state_;
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int inotify_fd_ = -1;
  int watch_wd_ = -1;
  int bound_tcp_port_ = -1;
  std::string watched_name_;  ///< basename of spec_path (inotify filter)
  std::vector<Client> clients_;
  volatile bool stop_ = false;
};

/// CLI entry: runs a Server until SIGINT/SIGTERM. Returns 0 on a clean
/// shutdown, 3 on setup failure (bad spec, unbindable socket).
int serve_main(const ServeOptions& options);

}  // namespace vmn::verify
