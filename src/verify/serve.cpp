#include "verify/serve.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/inotify.h>
#endif

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "vmn.hpp"

namespace vmn::verify {

namespace {

/// Reads the whole file; false when it cannot be opened (an editor may be
/// mid-rename - the caller keeps serving the old generation and retries).
bool slurp(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

bool all_digits(const std::string& s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isdigit(c) != 0;
  });
}

/// Minimal JSON string escaping (paths and invariant descriptions are
/// ASCII, but quotes and backslashes must not break the STATS line).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

struct VerdictCounts {
  std::size_t holds = 0;
  std::size_t violated = 0;
  std::size_t unknown = 0;
};

VerdictCounts count_verdicts(const BatchResult& batch) {
  VerdictCounts c;
  for (const VerifyResult& r : batch.results) {
    switch (r.outcome) {
      case Outcome::holds: ++c.holds; break;
      case Outcome::violated: ++c.violated; break;
      case Outcome::unknown: ++c.unknown; break;
    }
  }
  return c;
}

}  // namespace

// ---------------------------------------------------------------------------
// ServeState

ServeState::ServeState(ServeOptions options) : options_(std::move(options)) {
  std::string text;
  if (!slurp(options_.spec_path, text)) {
    throw Error("cannot open spec file: " + options_.spec_path);
  }
  io::Spec parsed = io::parse_spec_string(text);  // throws ParseError
  spec_ = std::make_unique<io::Spec>(std::move(parsed));
  spec_text_ = text;
  last_seen_text_ = text;
  if (options_.engine.verify.cache_dir.empty()) {
    // No disk cache requested: keep one in memory so verdicts survive
    // reloads - incremental re-verification is the daemon's whole point.
    options_.engine.memory_cache = true;
  }
  engine_ = std::make_unique<Engine>(spec_->model, options_.engine);
  stats_.generation = 1;
  run_current();
}

void ServeState::run_current() {
  last_batch_ = engine_->run_batch(spec_->invariants);
  ++stats_.batches;
  stats_.solver_calls += last_batch_.solver_calls;
  stats_.cache_hits += last_batch_.cache_hits;
}

ServeState::Applied ServeState::apply_text(const std::string& text,
                                           std::string& detail) {
  if (text == spec_text_) {
    // Content matches the served generation again (e.g. a broken save was
    // reverted): any pending parse error is moot.
    last_error_.clear();
    detail = "no file change";
    return Applied::unchanged;
  }
  io::Spec parsed;
  try {
    parsed = io::parse_spec_string(text);
  } catch (const Error& e) {
    last_error_ = e.what();
    ++stats_.parse_errors;
    detail = e.what();
    return Applied::rejected;
  }
  const io::SpecDiff diff = io::diff_specs(*spec_, parsed);
  if (diff.empty()) {
    // Comment/whitespace-only edit: adopt the bytes, keep the generation.
    spec_text_ = text;
    last_error_.clear();
    ++stats_.noop_edits;
    detail = "formatting-only edit";
    return Applied::unchanged;
  }
  auto next = std::make_unique<io::Spec>(std::move(parsed));
  // Rebind before dropping the old spec: the engine swaps its model
  // pointer and resets the lazily-built verifiers, so nothing dangles.
  engine_->rebind(next->model);
  spec_ = std::move(next);
  spec_text_ = text;
  last_error_.clear();
  ++stats_.generation;
  ++stats_.reloads;
  run_current();
  std::ostringstream os;
  os << diff.summary() << "; " << last_batch_.pool.jobs_executed
     << " jobs, " << last_batch_.solver_calls << " solver calls, "
     << last_batch_.cache_hits << " cache hits";
  detail = os.str();
  return Applied::reloaded;
}

bool ServeState::check_for_edit() {
  std::string text;
  if (!slurp(options_.spec_path, text)) return false;
  if (text == last_seen_text_) return false;
  last_seen_text_ = text;
  std::string detail;
  return apply_text(text, detail) == Applied::reloaded;
}

std::string ServeState::cmd_status() const {
  const VerdictCounts c = count_verdicts(last_batch_);
  std::ostringstream os;
  os << "OK generation=" << stats_.generation
     << " invariants=" << last_batch_.results.size() << " holds=" << c.holds
     << " violated=" << c.violated << " unknown=" << c.unknown
     << " degraded=" << (last_batch_.degradation.degraded() ? 1 : 0)
     << " spec=" << options_.spec_path;
  if (!last_error_.empty()) os << " last_error=\"" << last_error_ << '"';
  return os.str();
}

std::string ServeState::cmd_verdict(const std::string& which) const {
  std::string sel = trim(which);
  if (sel.size() >= 2 && sel.front() == '"' && sel.back() == '"') {
    sel = sel.substr(1, sel.size() - 2);
  }
  if (sel.empty()) {
    return "ERR VERDICT wants an invariant index or description";
  }
  const net::Network& net = spec_->model.network();
  auto name = [&](NodeId n) { return net.name(n); };
  std::size_t index = last_batch_.results.size();
  if (all_digits(sel)) {
    index = static_cast<std::size_t>(std::stoull(sel));
    if (index >= last_batch_.results.size()) {
      return "ERR invariant index " + sel + " out of range (have " +
             std::to_string(last_batch_.results.size()) + ")";
    }
  } else {
    for (std::size_t i = 0; i < spec_->invariants.size(); ++i) {
      if (spec_->invariants[i].describe(name) == sel) {
        index = i;
        break;
      }
    }
    if (index >= last_batch_.results.size()) {
      return "ERR unknown invariant: " + sel;
    }
  }
  const VerifyResult& r = last_batch_.results[index];
  std::ostringstream os;
  os << "OK " << to_string(r.outcome) << " index=" << index;
  if (r.by_symmetry) os << " [sym]";
  if (r.from_cache) os << " [cache]";
  os << " invariant=\"" << spec_->invariants[index].describe(name) << '"';
  return os.str();
}

std::string ServeState::cmd_reload() {
  std::string text;
  if (!slurp(options_.spec_path, text)) {
    return "ERR read: cannot open " + options_.spec_path;
  }
  last_seen_text_ = text;
  std::string detail;
  switch (apply_text(text, detail)) {
    case Applied::reloaded:
      return "OK reloaded generation=" + std::to_string(stats_.generation) +
             " " + detail;
    case Applied::unchanged:
      return "OK unchanged generation=" + std::to_string(stats_.generation) +
             " (" + detail + ")";
    case Applied::rejected:
      return "ERR parse: " + detail;
  }
  return "ERR internal";  // unreachable
}

std::string ServeState::cmd_stats() const {
  const VerdictCounts c = count_verdicts(last_batch_);
  const BatchResult& b = last_batch_;
  std::ostringstream os;
  os << "OK {"
     << "\"generation\":" << stats_.generation
     << ",\"spec\":\"" << json_escape(options_.spec_path) << '"'
     << ",\"invariants\":" << b.results.size()
     << ",\"holds\":" << c.holds
     << ",\"violated\":" << c.violated
     << ",\"unknown\":" << c.unknown
     << ",\"degraded\":" << (b.degradation.degraded() ? "true" : "false")
     << ",\"batch\":{"
     << "\"jobs_executed\":" << b.pool.jobs_executed
     << ",\"symmetry_hits\":" << b.pool.symmetry_hits
     << ",\"conservative_splits\":" << b.pool.conservative_splits
     << ",\"solver_calls\":" << b.solver_calls
     << ",\"plan_ms\":" << b.plan_time.count()
     << ",\"total_ms\":" << b.total_time.count()
     << ",\"cache_hits\":" << b.cache_hits
     << ",\"cache_misses\":" << b.cache_misses
     << ",\"cache_records_dropped\":" << b.degradation.cache_records_dropped
     << ",\"warm_binds\":" << b.warm_binds
     << ",\"warm_reuses\":" << b.warm_reuses
     << ",\"iso_mapped\":" << b.iso_mapped
     << ",\"iso_reuses\":" << b.iso_reuses
     << ",\"encode_transfer_builds\":" << b.encode_transfer_builds
     << ",\"encode_transfer_reuses\":" << b.encode_transfer_reuses
     << ",\"escalations\":" << b.degradation.escalations
     << "}"
     << ",\"lifetime\":{"
     << "\"batches\":" << stats_.batches
     << ",\"reloads\":" << stats_.reloads
     << ",\"noop_edits\":" << stats_.noop_edits
     << ",\"parse_errors\":" << stats_.parse_errors
     << ",\"requests\":" << stats_.requests
     << ",\"solver_calls\":" << stats_.solver_calls
     << ",\"cache_hits\":" << stats_.cache_hits
     << "}}";
  return os.str();
}

std::string ServeState::handle_line(const std::string& raw) {
  ++stats_.requests;
  std::string line = trim(raw);
  if (line.empty()) return "ERR empty command";
  std::string cmd;
  std::string rest;
  const std::size_t sp = line.find(' ');
  if (sp == std::string::npos) {
    cmd = line;
  } else {
    cmd = line.substr(0, sp);
    rest = line.substr(sp + 1);
  }
  std::transform(cmd.begin(), cmd.end(), cmd.begin(), [](unsigned char ch) {
    return static_cast<char>(std::toupper(ch));
  });
  const bool bare = trim(rest).empty();
  try {
    if (cmd == "STATUS") {
      return bare ? cmd_status() : "ERR STATUS takes no operand";
    }
    if (cmd == "VERDICT") return cmd_verdict(rest);
    if (cmd == "RELOAD") {
      return bare ? cmd_reload() : "ERR RELOAD takes no operand";
    }
    if (cmd == "STATS") {
      return bare ? cmd_stats() : "ERR STATS takes no operand";
    }
  } catch (const std::exception& e) {
    // A request must never take the daemon down; the served generation is
    // still intact, so report and keep listening.
    return std::string("ERR internal: ") + e.what();
  }
  return "ERR unknown command " + cmd +
         " (want STATUS | VERDICT <invariant> | RELOAD | STATS)";
}

// ---------------------------------------------------------------------------
// Server

namespace {

void set_cloexec(int fd) {
  const int flags = fcntl(fd, F_GETFD);
  if (flags >= 0) fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

/// Listeners must be non-blocking: accept_clients drains until EAGAIN, and
/// a blocking accept after the last pending connection would wedge the
/// whole event loop.
void set_nonblock(int fd) {
  const int flags = fcntl(fd, F_GETFL);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// send() with MSG_NOSIGNAL so a client that hangs up mid-response costs
/// an EPIPE, not a process-wide SIGPIPE.
bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(ServeOptions options) : state_(std::move(options)) {
  setup_listeners();
  setup_watch();
}

Server::~Server() { close_all(); }

void Server::setup_listeners() {
  const ServeOptions& opts = state_.options();
  if (opts.socket_path.empty() && opts.tcp_port < 0) {
    throw Error("serve needs a Unix socket path or a TCP port to listen on");
  }
  if (!opts.socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts.socket_path.size() >= sizeof(addr.sun_path)) {
      throw Error("socket path too long: " + opts.socket_path);
    }
    std::memcpy(addr.sun_path, opts.socket_path.c_str(),
                opts.socket_path.size() + 1);
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0) throw Error("socket(AF_UNIX) failed");
    set_cloexec(unix_fd_);
    set_nonblock(unix_fd_);
    ::unlink(opts.socket_path.c_str());  // stale socket from a prior run
    if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
            0 ||
        ::listen(unix_fd_, 8) < 0) {
      throw Error("cannot listen on " + opts.socket_path + ": " +
                  std::strerror(errno));
    }
  }
  if (opts.tcp_port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) throw Error("socket(AF_INET) failed");
    set_cloexec(tcp_fd_);
    set_nonblock(tcp_fd_);
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opts.tcp_port));
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
        ::listen(tcp_fd_, 8) < 0) {
      throw Error("cannot listen on 127.0.0.1:" +
                  std::to_string(opts.tcp_port) + ": " + std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      bound_tcp_port_ = ntohs(bound.sin_port);
    }
  }
}

void Server::setup_watch() {
#ifdef __linux__
  if (!state_.options().use_inotify) return;
  const std::string& path = state_.options().spec_path;
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  watched_name_ = slash == std::string::npos ? path : path.substr(slash + 1);
  inotify_fd_ = inotify_init1(IN_NONBLOCK | IN_CLOEXEC);
  if (inotify_fd_ < 0) return;  // fall back to pure polling
  // Watch the directory, not the file: editors that save via
  // write-to-temp + rename replace the inode, which a file watch loses.
  watch_wd_ = inotify_add_watch(inotify_fd_, dir.c_str(),
                                IN_CLOSE_WRITE | IN_MOVED_TO | IN_CREATE);
  if (watch_wd_ < 0) {
    ::close(inotify_fd_);
    inotify_fd_ = -1;
  }
#endif
}

void Server::drain_inotify() {
#ifdef __linux__
  if (inotify_fd_ < 0) return;
  alignas(inotify_event) char buf[4096];
  bool relevant = false;
  for (;;) {
    const ssize_t n = ::read(inotify_fd_, buf, sizeof buf);
    if (n <= 0) break;  // EAGAIN: queue drained
    std::size_t off = 0;
    while (off + sizeof(inotify_event) <= static_cast<std::size_t>(n)) {
      const auto* ev = reinterpret_cast<const inotify_event*>(buf + off);
      if (ev->len > 0 && watched_name_ == ev->name) relevant = true;
      off += sizeof(inotify_event) + ev->len;
    }
  }
  // The content compare inside check_for_edit gates actual work, so a
  // spurious neighbour-file event at most costs one file read.
  if (relevant) state_.check_for_edit();
#endif
}

void Server::accept_clients(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) break;
    set_cloexec(fd);
    clients_.push_back(Client{fd, {}});
    if (clients_.size() >= 64) break;  // bounded; poll round-robins anyway
  }
}

bool Server::service_client(Client& client) {
  char buf[4096];
  const ssize_t n = ::read(client.fd, buf, sizeof buf);
  if (n == 0) return false;  // orderly hangup
  if (n < 0) return errno == EINTR || errno == EAGAIN;
  client.inbuf.append(buf, static_cast<std::size_t>(n));
  std::size_t nl;
  while ((nl = client.inbuf.find('\n')) != std::string::npos) {
    std::string line = client.inbuf.substr(0, nl);
    client.inbuf.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!send_all(client.fd, state_.handle_line(line) + "\n")) return false;
  }
  if (client.inbuf.size() > (1u << 16)) {
    // A line this long is not the protocol; cut the connection rather
    // than buffer without bound.
    send_all(client.fd, "ERR line too long\n");
    return false;
  }
  return true;
}

void Server::run() {
  const int tick =
      static_cast<int>(state_.options().poll_interval.count());
  while (!stop_) {
    std::vector<pollfd> fds;
    const std::size_t unix_at = fds.size();
    if (unix_fd_ >= 0) fds.push_back({unix_fd_, POLLIN, 0});
    const std::size_t tcp_at = fds.size();
    if (tcp_fd_ >= 0) fds.push_back({tcp_fd_, POLLIN, 0});
    const std::size_t ino_at = fds.size();
    if (inotify_fd_ >= 0) fds.push_back({inotify_fd_, POLLIN, 0});
    const std::size_t clients_at = fds.size();
    for (const Client& c : clients_) fds.push_back({c.fd, POLLIN, 0});

    const int ready = ::poll(fds.data(), fds.size(), tick > 0 ? tick : 500);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      // Tick: the stat-poll fallback (and a safety net under inotify -
      // the compare makes a clean file free).
      state_.check_for_edit();
      continue;
    }
    if (unix_fd_ >= 0 && (fds[unix_at].revents & POLLIN) != 0) {
      accept_clients(unix_fd_);
    }
    if (tcp_fd_ >= 0 && (fds[tcp_at].revents & POLLIN) != 0) {
      accept_clients(tcp_fd_);
    }
    if (inotify_fd_ >= 0 && (fds[ino_at].revents & POLLIN) != 0) {
      drain_inotify();
    }
    for (std::size_t i = clients_.size(); i-- > 0;) {
      const pollfd& pfd = fds[clients_at + i];
      if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (!service_client(clients_[i])) {
        ::close(clients_[i].fd);
        clients_.erase(clients_.begin() +
                       static_cast<std::ptrdiff_t>(i));
      }
    }
  }
}

void Server::close_all() {
  for (const Client& c : clients_) ::close(c.fd);
  clients_.clear();
  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  if (inotify_fd_ >= 0) ::close(inotify_fd_);
  unix_fd_ = tcp_fd_ = inotify_fd_ = -1;
  if (!state_.options().socket_path.empty()) {
    ::unlink(state_.options().socket_path.c_str());
  }
}

namespace {
Server* g_server = nullptr;
void handle_stop_signal(int) {
  if (g_server != nullptr) g_server->stop();
}
}  // namespace

int serve_main(const ServeOptions& options) {
  try {
    Server server(options);
    g_server = &server;
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
    const ServeState& st = server.state();
    std::printf("serving %s: generation %llu, %zu invariants\n",
                options.spec_path.c_str(),
                static_cast<unsigned long long>(st.stats().generation),
                st.last_batch().results.size());
    if (!options.socket_path.empty()) {
      std::printf("  listening on unix:%s\n", options.socket_path.c_str());
    }
    if (server.tcp_port() >= 0) {
      std::printf("  listening on tcp:127.0.0.1:%d\n", server.tcp_port());
    }
    std::fflush(stdout);
    server.run();
    g_server = nullptr;
    std::printf("serve: shut down cleanly\n");
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
}

}  // namespace vmn::verify
