#include "verify/faults.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "core/error.hpp"

namespace vmn::verify {

namespace {

// splitmix64: the finalizer scrambles (seed, site, ids) into a uniform
// 64-bit word. Decisions compare that word against p * 2^64, so a fault
// with probability p fires at ~p of its opportunities, independently per
// site — and identically so on every run with the same plan.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t mix_site(std::uint64_t seed, std::uint64_t site, std::uint64_t a,
                       std::uint64_t b) {
  return mix64(mix64(mix64(seed ^ site) ^ a) ^ b);
}

// Site tags: fixed constants so a plan's schedule survives refactors that
// reorder call sites.
constexpr std::uint64_t kSiteWorkerCrash = 0x776b2d6372617368ull;  // "wk-crash"
constexpr std::uint64_t kSiteWorkerHang = 0x776b2d68616e6721ull;
constexpr std::uint64_t kSiteJobCrash = 0x6a6f622d63726173ull;
constexpr std::uint64_t kSiteFrameCorrupt = 0x66722d636f727275ull;
constexpr std::uint64_t kSiteFrameTruncate = 0x66722d7472756e63ull;
constexpr std::uint64_t kSiteSolverUnknown = 0x736c2d756e6b6e6full;
constexpr std::uint64_t kSiteSolverTimeout = 0x736c2d74696d656full;
constexpr std::uint64_t kSiteCacheTear = 0x63682d7465617221ull;
constexpr std::uint64_t kSiteCacheFlip = 0x63682d666c697021ull;
constexpr std::uint64_t kSiteBackoff = 0x626b2d6a69747465ull;

double parse_probability(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double p = std::strtod(value.c_str(), &end);
  if (end == nullptr || *end != '\0' || p < 0.0 || p > 1.0) {
    throw Error("fault plan: " + key + " wants a probability in [0,1], got '" +
                value + "'");
  }
  return p;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value.empty()) {
    throw Error("fault plan: " + key + " wants an unsigned integer, got '" +
                value + "'");
  }
  return static_cast<std::uint64_t>(v);
}

void append_knob(std::string& out, const char* key, double p) {
  if (p == 0.0) return;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s%s=%g", out.empty() ? "" : ",", key, p);
  out += buf;
}

}  // namespace

bool FaultPlan::enabled() const {
  return worker_crash > 0 || worker_hang > 0 || job_crash > 0 ||
         frame_corrupt > 0 || frame_truncate > 0 || solver_unknown > 0 ||
         solver_timeout > 0 || cache_torn_tail > 0 || cache_bit_flip > 0 ||
         kill_worker >= 0 || kill_all || crash_job >= 0;
}

bool FaultPlan::has_worker_faults() const {
  return worker_crash > 0 || worker_hang > 0 || job_crash > 0 ||
         frame_corrupt > 0 || frame_truncate > 0 || kill_worker >= 0 ||
         kill_all || crash_job >= 0;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::stringstream in(spec);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      throw Error("fault plan: expected key=value, got '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "seed") {
      plan.seed = parse_u64(key, value);
    } else if (key == "worker-crash") {
      plan.worker_crash = parse_probability(key, value);
    } else if (key == "worker-hang") {
      plan.worker_hang = parse_probability(key, value);
    } else if (key == "job-crash") {
      plan.job_crash = parse_probability(key, value);
    } else if (key == "frame-corrupt") {
      plan.frame_corrupt = parse_probability(key, value);
    } else if (key == "frame-truncate") {
      plan.frame_truncate = parse_probability(key, value);
    } else if (key == "solver-unknown") {
      plan.solver_unknown = parse_probability(key, value);
    } else if (key == "solver-timeout") {
      plan.solver_timeout = parse_probability(key, value);
    } else if (key == "cache-torn-tail") {
      plan.cache_torn_tail = parse_probability(key, value);
    } else if (key == "cache-bit-flip") {
      plan.cache_bit_flip = parse_probability(key, value);
    } else if (key == "kill") {
      if (value == "all") {
        plan.kill_all = true;
      } else {
        plan.kill_worker = static_cast<std::int64_t>(parse_u64(key, value));
      }
    } else if (key == "crash-job") {
      plan.crash_job = static_cast<std::int64_t>(parse_u64(key, value));
    } else {
      throw Error("fault plan: unknown knob '" + key + "'");
    }
  }
  return plan;
}

FaultPlan FaultPlan::from_env() {
  FaultPlan plan;
  const char* spec = std::getenv("VMN_WORKER_FAULT");
  if (spec == nullptr || *spec == '\0') return plan;
  const std::string s(spec);
  if (s == "kill-all") {
    plan.kill_all = true;
  } else if (s.rfind("kill:", 0) == 0) {
    plan.kill_worker =
        static_cast<std::int64_t>(parse_u64("VMN_WORKER_FAULT", s.substr(5)));
  } else {
    throw Error("VMN_WORKER_FAULT: expected kill:<i> or kill-all, got '" + s +
                "'");
  }
  return plan;
}

void FaultPlan::merge(const FaultPlan& other) {
  if (other.seed != 0) seed = other.seed;
  if (other.worker_crash > 0) worker_crash = other.worker_crash;
  if (other.worker_hang > 0) worker_hang = other.worker_hang;
  if (other.job_crash > 0) job_crash = other.job_crash;
  if (other.frame_corrupt > 0) frame_corrupt = other.frame_corrupt;
  if (other.frame_truncate > 0) frame_truncate = other.frame_truncate;
  if (other.solver_unknown > 0) solver_unknown = other.solver_unknown;
  if (other.solver_timeout > 0) solver_timeout = other.solver_timeout;
  if (other.cache_torn_tail > 0) cache_torn_tail = other.cache_torn_tail;
  if (other.cache_bit_flip > 0) cache_bit_flip = other.cache_bit_flip;
  if (other.kill_worker >= 0) kill_worker = other.kill_worker;
  if (other.kill_all) kill_all = true;
  if (other.crash_job >= 0) crash_job = other.crash_job;
}

std::string FaultPlan::to_string() const {
  std::string out;
  if (seed != 0) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "seed=%" PRIu64, seed);
    out += buf;
  }
  append_knob(out, "worker-crash", worker_crash);
  append_knob(out, "worker-hang", worker_hang);
  append_knob(out, "job-crash", job_crash);
  append_knob(out, "frame-corrupt", frame_corrupt);
  append_knob(out, "frame-truncate", frame_truncate);
  append_knob(out, "solver-unknown", solver_unknown);
  append_knob(out, "solver-timeout", solver_timeout);
  append_knob(out, "cache-torn-tail", cache_torn_tail);
  append_knob(out, "cache-bit-flip", cache_bit_flip);
  if (kill_all) {
    out += out.empty() ? "kill=all" : ",kill=all";
  } else if (kill_worker >= 0) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%skill=%" PRId64, out.empty() ? "" : ",",
                  kill_worker);
    out += buf;
  }
  if (crash_job >= 0) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%scrash-job=%" PRId64,
                  out.empty() ? "" : ",", crash_job);
    out += buf;
  }
  return out;
}

bool FaultInjector::decide(double p, std::uint64_t site, std::uint64_t a,
                           std::uint64_t b) const {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  const std::uint64_t h = mix_site(plan_.seed, site, a, b);
  const double unit =
      static_cast<double>(h) /
      (static_cast<double>(std::numeric_limits<std::uint64_t>::max()) + 1.0);
  return unit < p;
}

bool FaultInjector::crash_worker(std::uint32_t worker_ordinal,
                                 std::uint64_t dispatch_k) const {
  if (dispatch_k == 0) {
    if (plan_.kill_all) return true;
    if (plan_.kill_worker >= 0 &&
        static_cast<std::uint64_t>(plan_.kill_worker) == worker_ordinal) {
      return true;
    }
  }
  return decide(plan_.worker_crash, kSiteWorkerCrash, worker_ordinal,
                dispatch_k);
}

bool FaultInjector::hang_worker(std::uint32_t worker_ordinal,
                                std::uint64_t dispatch_k) const {
  return decide(plan_.worker_hang, kSiteWorkerHang, worker_ordinal, dispatch_k);
}

bool FaultInjector::crash_on_job(std::uint64_t job_id) const {
  if (plan_.crash_job >= 0 &&
      static_cast<std::uint64_t>(plan_.crash_job) == job_id) {
    return true;
  }
  return decide(plan_.job_crash, kSiteJobCrash, job_id, 0);
}

FaultInjector::FrameFault FaultInjector::frame_fault(
    std::uint32_t worker_ordinal, std::uint64_t frame_ordinal) const {
  if (decide(plan_.frame_corrupt, kSiteFrameCorrupt, worker_ordinal,
             frame_ordinal)) {
    return FrameFault::corrupt;
  }
  if (decide(plan_.frame_truncate, kSiteFrameTruncate, worker_ordinal,
             frame_ordinal)) {
    return FrameFault::truncate;
  }
  return FrameFault::none;
}

FaultInjector::SolverFault FaultInjector::solver_fault(
    std::uint64_t solve_ordinal, std::uint32_t attempt) const {
  // Persistent first: a timeout-faulted check stays faulted under
  // escalation, which is exactly the case escalation must survive
  // (counted but not rescued).
  if (decide(plan_.solver_timeout, kSiteSolverTimeout, solve_ordinal, 0)) {
    return SolverFault::forced_timeout;
  }
  if (attempt == 0 &&
      decide(plan_.solver_unknown, kSiteSolverUnknown, solve_ordinal, 0)) {
    return SolverFault::forced_unknown;
  }
  return SolverFault::none;
}

bool FaultInjector::tear_cache_flush(std::uint64_t flush_ordinal) const {
  return decide(plan_.cache_torn_tail, kSiteCacheTear, flush_ordinal, 0);
}

bool FaultInjector::flip_cache_record(std::uint64_t record_ordinal) const {
  return decide(plan_.cache_bit_flip, kSiteCacheFlip, record_ordinal, 0);
}

std::chrono::milliseconds respawn_backoff(std::uint64_t seed, std::size_t slot,
                                          std::size_t attempt,
                                          std::chrono::milliseconds base,
                                          std::chrono::milliseconds cap) {
  if (base.count() <= 0) return std::chrono::milliseconds{0};
  // min(cap, base << attempt), shift clamped so it cannot overflow.
  const std::uint64_t shift = attempt < 20 ? attempt : 20;
  std::uint64_t ms = static_cast<std::uint64_t>(base.count()) << shift;
  const std::uint64_t cap_ms =
      cap.count() > 0 ? static_cast<std::uint64_t>(cap.count()) : ms;
  if (ms > cap_ms) ms = cap_ms;
  const std::uint64_t jitter = mix_site(seed, kSiteBackoff, slot, attempt) %
                               static_cast<std::uint64_t>(base.count());
  return std::chrono::milliseconds{static_cast<long long>(ms + jitter)};
}

std::string DegradationReport::summary() const {
  std::ostringstream out;
  out << completed << " completed, " << abandoned_retries << " abandoned, "
      << quarantined << " quarantined, " << deadline_abandoned
      << " past deadline";
  if (escalations > 0) {
    out << "; " << escalations << " escalated (" << escalations_rescued
        << " rescued)";
  }
  if (workers_respawned > 0) out << "; " << workers_respawned << " respawned";
  if (cache_records_dropped > 0) {
    out << "; " << cache_records_dropped << " cache records dropped";
  }
  if (deadline_expired) out << "; deadline expired";
  return out.str();
}

}  // namespace vmn::verify
