#include "verify/parallel.hpp"

#include <algorithm>
#include <thread>

namespace vmn::verify {

void TimingHistogram::record(std::chrono::milliseconds ms) {
  std::size_t bucket = 0;
  for (auto v = ms.count(); v > 0; v >>= 1) ++bucket;
  if (buckets.size() <= bucket) buckets.resize(bucket + 1);
  ++buckets[bucket];
}

std::size_t TimingHistogram::samples() const {
  std::size_t n = 0;
  for (std::size_t b : buckets) n += b;
  return n;
}

std::string TimingHistogram::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (!out.empty()) out += " ";
    if (i == 0) {
      out += "<1ms";
    } else {
      out += std::to_string(1LL << (i - 1)) + "-" + std::to_string(1LL << i) +
             "ms";
    }
    out += ":" + std::to_string(buckets[i]);
  }
  return out.empty() ? "(no samples)" : out;
}

BatchResult ParallelBatchResult::to_batch() const& {
  BatchResult out;
  out.results = results;
  out.solver_calls = solver_calls;
  out.total_time = total_time;
  return out;
}

BatchResult ParallelBatchResult::to_batch() && {
  BatchResult out;
  out.results = std::move(results);
  out.solver_calls = solver_calls;
  out.total_time = total_time;
  return out;
}

ParallelVerifier::ParallelVerifier(const encode::NetworkModel& model,
                                   ParallelOptions options)
    : model_(&model), options_(options) {
  classes_ = options_.verify.infer_policy_classes
                 ? slice::infer_policy_classes(model)
                 : slice::declared_policy_classes(model);
}

JobPlan ParallelVerifier::plan(
    const std::vector<encode::Invariant>& invariants) const {
  // The one shared planner (verify::plan_jobs): the sequential engine
  // executes exactly this plan in job order, which is what makes the two
  // engines pick identical representatives and agree outcome-for-outcome.
  return plan_jobs(*model_, invariants, classes_, options_.use_symmetry,
                   options_.verify);
}

ParallelBatchResult ParallelVerifier::verify_all(
    const std::vector<encode::Invariant>& invariants) const {
  const auto start = std::chrono::steady_clock::now();
  ParallelBatchResult out;
  out.invariant_count = invariants.size();
  out.results.resize(invariants.size());

  JobPlan plan = this->plan(invariants);
  out.jobs_executed = plan.jobs.size();
  out.symmetry_hits = plan.symmetry_hits;
  out.conservative_splits = plan.conservative_splits;
  out.dedup_hit_rate = plan.dedup_hit_rate();

  // Fan out: one solver call per job, results written into per-job slots so
  // aggregation is independent of worker scheduling.
  std::vector<VerifyResult> job_results(plan.jobs.size());
  std::size_t workers = options_.jobs != 0
                            ? options_.jobs
                            : std::thread::hardware_concurrency();
  workers = std::max<std::size_t>(1, std::min(workers, plan.jobs.size()));
  SolverPool pool(workers, options_.verify.solver);
  pool.run(plan.jobs.size(), [&](std::size_t index, SolverSession& session) {
    Job& job = plan.jobs[index];
    job_results[index] = verify_members(
        *model_, invariants[job.invariant_index], std::move(job.members),
        options_.verify.max_failures, session);
  });
  out.workers = pool.stats();

  // Aggregate: representatives keep their full result (including any
  // counterexample); inheritors copy the outcome with by_symmetry set, like
  // the sequential batch path.
  for (std::size_t j = 0; j < plan.jobs.size(); ++j) {
    const Job& job = plan.jobs[j];
    VerifyResult& rep = job_results[j];
    rep.total_time += job.plan_time;
    out.solve_histogram.record(rep.solve_time);
    ++out.solver_calls;
    for (std::size_t k : job.inheritors) {
      out.results[k] = inherit_result(rep);
    }
    out.results[job.invariant_index] = std::move(rep);
  }
  out.total_time = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  return out;
}

}  // namespace vmn::verify
