#include "verify/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "io/spec.hpp"

namespace vmn::verify {

std::string to_string(Backend backend) {
  switch (backend) {
    case Backend::thread:
      return "thread";
    case Backend::process:
      return "process";
  }
  return "?";
}

ParallelVerifier::ParallelVerifier(const encode::NetworkModel& model,
                                   ParallelOptions options)
    : model_(&model), options_(options), ctx_(model.network()) {
  classes_ = build_policy_classes(model, options_.verify, ctx_);
}

JobPlan ParallelVerifier::plan(
    const std::vector<encode::Invariant>& invariants) const {
  // The one shared planner (verify::plan_jobs): the sequential engine
  // executes exactly this plan in job order, which is what makes the two
  // engines pick identical representatives and agree outcome-for-outcome.
  return plan_jobs(*model_, invariants, classes_, options_.use_symmetry,
                   options_.verify, &ctx_);
}

BatchResult ParallelVerifier::verify_all(
    const std::vector<encode::Invariant>& invariants) const {
  const auto start = std::chrono::steady_clock::now();
  std::optional<std::chrono::steady_clock::time_point> deadline_at;
  if (options_.deadline.count() > 0) deadline_at = start + options_.deadline;
  BatchResult out;
  out.pool.invariant_count = invariants.size();
  out.results.resize(invariants.size());

  JobPlan plan = this->plan(invariants);
  out.pool.jobs_executed = plan.planned_jobs();
  out.pool.symmetry_hits = plan.symmetry_hits;
  out.pool.conservative_splits = plan.conservative_splits;
  out.pool.dedup_hit_rate = plan.dedup_hit_rate();
  out.pool.merge_blockers = plan.merge_blockers;
  for (const Job& job : plan.jobs) {
    out.pool.iso_class_sizes.push_back(job.fan_out());
  }
  out.plan_time = plan.plan_time;
  out.iso_mapped = plan.iso_mapped;

  // Persistent-cache pass: answer whatever a previous batch already solved
  // before any task is scheduled; only the misses reach the pool. An
  // Engine-lent cache survives across calls (and daemon reloads).
  std::optional<ResultCache> local_cache;
  if (external_cache_ == nullptr) {
    local_cache.emplace(options_.verify.cache_dir,
                        model_fingerprint(*model_));
  }
  ResultCache& cache = external_cache_ ? *external_cache_ : *local_cache;
  const FaultInjector cache_faults(options_.verify.faults);
  if (cache_faults.enabled()) cache.set_fault_injector(&cache_faults);
  out.degradation.cache_records_dropped = cache.records_dropped();
  // Per-binding cache pass: every verdict binding of every job looks
  // itself up by its own cross-run problem key; a job reaches the pool
  // only when at least one of its bindings missed. The pool solves the
  // job's encode-space problem once, and the aggregation below fans the
  // verdict out through the remaining bindings' inverse bijections.
  std::vector<VerifyResult> job_results(plan.jobs.size());
  std::vector<std::vector<VerifyResult>> bound(plan.jobs.size());
  std::vector<std::vector<char>> from_cache_hit(plan.jobs.size());
  std::vector<std::size_t> to_solve;
  to_solve.reserve(plan.jobs.size());
  for (std::size_t j = 0; j < plan.jobs.size(); ++j) {
    const Job& job = plan.jobs[j];
    const std::size_t fan = job.fan_out();
    bound[j].resize(fan);
    from_cache_hit[j].assign(fan, 0);
    bool need_solve = false;
    for (std::size_t k = 0; k < fan; ++k) {
      const BindingRef b = job.binding(k);
      if (!b.problem_key->key.empty()) {
        if (std::optional<ResultCache::Entry> hit =
                cache.lookup(b.problem_key->key)) {
          bound[j][k] = result_from_cache(*hit, invariants[b.invariant_index]);
          from_cache_hit[j][k] = 1;
          ++out.cache_hits;
          continue;
        }
      }
      need_solve = true;
    }
    if (need_solve) to_solve.push_back(j);
  }

  // Group runs of same-shape jobs (the planner made them adjacent, and
  // removing cache hits preserves adjacency) into single pool tasks: the
  // jobs of a group execute on one worker's warm session, back to back.
  // "Same shape" means the same *base encoding* - identical member sets,
  // or member sets rebound onto one isomorphic representative
  // (Job::encode_members), which is how cross-isomorphic reuse survives
  // the fan-out.
  std::size_t requested = options_.jobs != 0
                              ? options_.jobs
                              : std::thread::hardware_concurrency();
  if (requested == 0) requested = 1;
  std::vector<std::pair<std::size_t, std::size_t>> groups;  // [begin, end)
  for (std::size_t k = 0; k < to_solve.size();) {
    std::size_t end = k + 1;
    while (end < to_solve.size() &&
           plan.jobs[to_solve[end]].encode_members() ==
               plan.jobs[to_solve[k]].encode_members()) {
      ++end;
    }
    groups.emplace_back(k, end);
    k = end;
  }
  // Warm reuse only needs adjacency *within* a task, so when there are
  // fewer shape-runs than requested workers, split the largest runs until
  // the fan-out is restored - otherwise a batch whose jobs all share one
  // shape (e.g. --no-slices audits) would serialize onto a single worker.
  // Deterministic for a fixed (plan, jobs) pair: the first largest run
  // splits at its midpoint each round.
  const std::size_t target = std::min(requested, to_solve.size());
  while (groups.size() < target) {
    std::size_t best = groups.size();
    std::size_t best_len = 1;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const std::size_t len = groups[g].second - groups[g].first;
      if (len > best_len) {
        best = g;
        best_len = len;
      }
    }
    if (best == groups.size()) break;  // nothing left to split
    const auto [begin, end] = groups[best];
    const std::size_t mid = begin + (end - begin) / 2;
    groups[best] = {begin, mid};
    groups.insert(groups.begin() + static_cast<std::ptrdiff_t>(best) + 1,
                  {mid, end});
  }

  // Fan out: results are written into per-job slots, so aggregation is
  // independent of worker scheduling. `solved` collects the jobs a solver
  // actually answered (the process backend may abandon some to unknown).
  std::set<std::size_t> solved;
  if (options_.backend == Backend::process) {
    // Process backend: project each shape group's slice to a spec, frame
    // the jobs by name, and stream them to forked workers; crashed or hung
    // workers get their unfinished jobs requeued onto the survivors.
    std::vector<wire::WireJob> wire_jobs;
    wire_jobs.reserve(to_solve.size());
    for (std::size_t k = 0; k < to_solve.size(); ++k) {
      wire_jobs.push_back(wire::make_wire_job(*model_, plan.jobs[to_solve[k]],
                                              options_.verify.max_failures));
    }
    std::vector<ProcessGroup> process_groups;
    process_groups.reserve(groups.size());
    for (const auto& [begin, end] : groups) {
      ProcessGroup group;
      // The projection must contain every node the group's jobs reference.
      // Jobs cross the pipe in encode space (v4), so that is exactly the
      // union of encode member sets - a merged class's own member sets
      // never travel; the dispatcher relabels verdicts after the fact.
      std::set<NodeId> span;
      for (std::size_t k = begin; k < end; ++k) {
        const Job& job = plan.jobs[to_solve[k]];
        span.insert(job.encode_members().begin(), job.encode_members().end());
      }
      group.spec_text = io::write_projected_spec_string(
          *model_, std::vector<NodeId>(span.begin(), span.end()));
      for (std::size_t k = begin; k < end; ++k) group.jobs.push_back(k);
      process_groups.push_back(std::move(group));
    }
    ProcessPoolOptions popts = options_.process;
    popts.workers = requested;
    // The fault plan and escalation policy ride the verify options so the
    // CLI's --faults / --no-escalate reach the workers unchanged; the
    // deadline hands the pool whatever budget planning and the cache pass
    // left (a floor of 1ms keeps "already expired" on the pool's own
    // drain path instead of special-casing it here).
    popts.faults = options_.verify.faults;
    popts.escalate_unknown = options_.verify.escalate_unknown;
    popts.escalation_timeout_mult = options_.verify.escalation_timeout_mult;
    if (deadline_at) {
      popts.deadline = std::max(
          std::chrono::milliseconds(1),
          std::chrono::duration_cast<std::chrono::milliseconds>(
              *deadline_at - std::chrono::steady_clock::now()));
    }
    ProcessPool pool(options_.verify.solver, options_.verify.warm_solving,
                     popts);
    ProcessDispatch dispatch =
        pool.run(wire_jobs, std::move(process_groups));
    out.pool.workers = dispatch.workers;
    out.pool.workers_spawned = dispatch.workers_spawned;
    out.pool.workers_crashed = dispatch.workers_crashed;
    out.pool.jobs_requeued = dispatch.jobs_requeued;
    out.pool.jobs_abandoned = dispatch.jobs_abandoned;
    out.degradation.quarantined = dispatch.jobs_quarantined;
    out.degradation.deadline_abandoned = dispatch.jobs_deadline_abandoned;
    out.degradation.abandoned_retries = dispatch.jobs_abandoned -
                                        dispatch.jobs_quarantined -
                                        dispatch.jobs_deadline_abandoned;
    out.degradation.workers_respawned = dispatch.workers_respawned;
    out.degradation.deadline_expired = dispatch.deadline_expired;
    out.degradation.reasons = std::move(dispatch.reasons);
    for (std::size_t k = 0; k < to_solve.size(); ++k) {
      if (dispatch.results[k].has_value()) {
        const wire::WireResult& r = *dispatch.results[k];
        try {
          job_results[to_solve[k]] =
              wire::to_verify_result(model_->network(), r);
        } catch (const wire::WireError&) {
          // A digest-valid result naming nodes this model lacks (byzantine
          // or version-skewed worker binary): abandon the one job to an
          // unknown verdict instead of aborting a batch full of good ones.
          job_results[to_solve[k]] = VerifyResult{};
          ++out.pool.jobs_abandoned;
          ++out.degradation.abandoned_retries;
          out.degradation.reasons.push_back(
              "job " + std::to_string(to_solve[k]) +
              " abandoned: result names nodes unknown to this model");
          continue;
        }
        out.warm_binds += r.warm_binds;
        out.warm_reuses += r.warm_reuses;
        out.iso_reuses += r.iso_reuses;
        out.encode_transfer_builds += r.encode_transfer_builds;
        out.encode_transfer_reuses += r.encode_transfer_reuses;
        out.degradation.escalations += r.escalations;
        out.degradation.escalations_rescued += r.escalations_rescued;
        solved.insert(to_solve[k]);
      }
      // Abandoned jobs keep the default-constructed unknown VerifyResult;
      // they are counted above, never dropped.
    }
  } else {
    const std::size_t workers = std::max<std::size_t>(
        1, std::min(requested, std::max<std::size_t>(groups.size(), 1)));
    SolverPool pool(workers, options_.verify.solver,
                    options_.verify.warm_solving);
    pool.set_resilience(session_resilience(options_.verify));
    // Deadline bookkeeping: each slot of `skipped` is written by exactly
    // one worker (per-job ownership), so no lock; the counter is atomic
    // because any worker may be the one to notice expiry.
    std::vector<char> skipped(to_solve.size(), 0);
    std::atomic<std::size_t> deadline_skipped{0};
    pool.run(groups.size(), [&](std::size_t gi, SolverSession& session) {
      // Warm reuse is scoped to this task: a session that just solved a
      // same-shape task must not leak its context (and learned state) into
      // this one, or results would depend on the task-to-worker race. The
      // transfer memo survives (same model across every task of a batch).
      session.reset_warm(/*keep_transfers=*/true);
      for (std::size_t k = groups[gi].first; k < groups[gi].second; ++k) {
        if (deadline_at &&
            std::chrono::steady_clock::now() >= *deadline_at) {
          // Past the deadline: leave the default unknown verdict and keep
          // draining so every job is accounted, not solved.
          skipped[k] = 1;
          deadline_skipped.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const Job& job = plan.jobs[to_solve[k]];
        job_results[to_solve[k]] = verify_members(
            *model_, job.solve_invariant, job.encode_members(),
            options_.verify.max_failures, session, !job.iso_image.empty());
      }
    });
    out.pool.workers = pool.stats();
    for (std::size_t w = 0; w < pool.size(); ++w) {
      out.warm_binds += pool.session(w).binds();
      out.warm_reuses += pool.session(w).warm_reuses();
      out.iso_reuses += pool.session(w).iso_reuses();
      out.encode_transfer_builds += pool.session(w).encode_transfer_builds();
      out.encode_transfer_reuses += pool.session(w).encode_transfer_reuses();
      out.degradation.escalations += pool.session(w).escalations();
      out.degradation.escalations_rescued +=
          pool.session(w).escalations_rescued();
    }
    for (std::size_t k = 0; k < to_solve.size(); ++k) {
      if (skipped[k] == 0) solved.insert(to_solve[k]);
    }
    if (const std::size_t n = deadline_skipped.load()) {
      out.pool.jobs_abandoned += n;
      out.degradation.deadline_abandoned += n;
      out.degradation.deadline_expired = true;
      out.degradation.reasons.push_back("deadline expired with " +
                                        std::to_string(n) +
                                        " jobs not yet attempted");
    }
  }
  // Aggregate: each job's encode-space verdict fans out through its
  // bindings' inverse bijections (verify::bind_result) - replays beyond
  // the first non-cached binding count as iso_verdict_reuses -
  // representatives keep their full (relabeled) result and inheritors
  // copy the outcome with by_symmetry set, like the sequential batch
  // path. Cache hits and abandoned jobs count no solver call.
  for (std::size_t j = 0; j < plan.jobs.size(); ++j) {
    const Job& job = plan.jobs[j];
    const bool was_solved = solved.count(j) != 0;
    if (was_solved) {
      out.pool.solve_histogram.record(job_results[j].solve_time);
      ++out.solver_calls;
    }
    const std::size_t fan = job.fan_out();
    bool replayed = false;
    for (std::size_t k = 0; k < fan; ++k) {
      const BindingRef b = job.binding(k);
      VerifyResult rep;
      if (from_cache_hit[j][k] != 0) {
        rep = std::move(bound[j][k]);
      } else {
        rep = bind_result(*model_, job_results[j], *b.members, *b.iso_image);
        if (was_solved) {
          if (replayed) ++out.iso_verdict_reuses;
          replayed = true;
        }
        // Keyless bindings (no-symmetry planning, or a problem that
        // resists canonicalization) are outside the cache's reach; they
        // are not misses. Abandoned jobs count misses but store nothing
        // (unknown outcomes are never persisted).
        if (cache.enabled() && !b.problem_key->key.empty()) {
          ++out.cache_misses;
          ResultCache::Entry entry;
          entry.status = job_results[j].raw_status;
          entry.slice_size = job_results[j].slice_size;
          entry.assertion_count = job_results[j].assertion_count;
          entry.binding = binding_signature(*model_, b.problem_key->order);
          cache.store(b.problem_key->key, entry);
        }
      }
      rep.total_time += b.plan_time;
      for (std::size_t inh : *b.inheritors) {
        out.results[inh] = inherit_result(rep);
      }
      out.results[b.invariant_index] = std::move(rep);
    }
  }
  if (cache.enabled()) {
    cache.flush();
    out.degradation.cache_records_dropped = cache.records_dropped();
  }
  // The fault injector is a local; an Engine-lent cache outlives this call
  // and must not keep the dangling pointer.
  cache.set_fault_injector(nullptr);
  const std::size_t abandoned_total = out.degradation.abandoned_retries +
                                      out.degradation.quarantined +
                                      out.degradation.deadline_abandoned;
  out.degradation.completed = out.pool.jobs_executed > abandoned_total
                                  ? out.pool.jobs_executed - abandoned_total
                                  : 0;
  out.total_time = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  return out;
}

}  // namespace vmn::verify
