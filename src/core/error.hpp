// Exception hierarchy for the VMN library.
#pragma once

#include <stdexcept>
#include <string>

namespace vmn {

/// Base class of all errors raised by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a static forwarding loop is detected while computing a
/// transfer function (paper, section 2.3 footnote 5: loops raise an
/// exception so the operator is aware, and the packet is treated as dropped).
class ForwardingLoopError : public Error {
 public:
  explicit ForwardingLoopError(const std::string& what) : Error(what) {}
};

/// Raised on malformed models/topologies (dangling links, duplicate names...).
class ModelError : public Error {
 public:
  explicit ModelError(const std::string& what) : Error(what) {}
};

/// Raised when the solver backend fails in an unrecoverable way.
class SolverError : public Error {
 public:
  explicit SolverError(const std::string& what) : Error(what) {}
};

}  // namespace vmn
