// Counterexample traces: a time-ordered list of events that violates an
// invariant, extracted from a satisfying solver model or produced by the
// simulator.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/event.hpp"

namespace vmn {

/// A schedule of events witnessing an invariant violation.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<Event> events);

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  void add(Event e);
  /// Stable-sorts events by timestep.
  void sort_by_time();

  /// Renders the trace; `node_name` maps ids to human-readable names.
  [[nodiscard]] std::string to_string(
      const std::function<std::string(NodeId)>& node_name) const;

 private:
  std::vector<Event> events_;
};

}  // namespace vmn
