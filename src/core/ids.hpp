// Strongly typed identifiers used across the library.
#pragma once

#include <cstdint>
#include <functional>

namespace vmn {

/// CRTP-free strong integer id. Distinct Tag types are not interconvertible.
template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint32_t;
  static constexpr underlying_type invalid_value = ~underlying_type{0};

  constexpr Id() = default;
  constexpr explicit Id(underlying_type v) : value_(v) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != invalid_value; }

  friend constexpr bool operator==(Id a, Id b) = default;
  friend constexpr auto operator<=>(Id a, Id b) = default;

 private:
  underlying_type value_ = invalid_value;
};

struct NodeTag {};
struct LinkTag {};
struct ScenarioTag {};
struct PolicyClassTag {};
struct TenantTag {};

/// Identifies a node (host, switch or middlebox) within a Network.
using NodeId = Id<NodeTag>;
/// Identifies a link between two nodes.
using LinkId = Id<LinkTag>;
/// Identifies a failure scenario (scenario 0 is always "no failures").
using ScenarioId = Id<ScenarioTag>;
/// Identifies a policy equivalence class (paper, section 4.1).
using PolicyClassId = Id<PolicyClassTag>;
/// Identifies a tenant in multi-tenant scenarios.
using TenantId = Id<TenantTag>;

}  // namespace vmn

namespace std {
template <typename Tag>
struct hash<vmn::Id<Tag>> {
  size_t operator()(vmn::Id<Tag> id) const noexcept {
    return std::hash<typename vmn::Id<Tag>::underlying_type>{}(id.value());
  }
};
}  // namespace std
