// IPv4-style addresses and prefixes.
//
// Addresses identify hosts in invariants and middlebox configuration;
// prefixes drive longest-prefix-match forwarding in the static datapath
// substrate (src/dataplane).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace vmn {

/// A 32-bit network address (rendered dotted-quad for humans).
class Address {
 public:
  constexpr Address() = default;
  constexpr explicit Address(std::uint32_t bits) : bits_(bits) {}

  /// Builds an address from four octets, e.g. Address::of(10, 0, 0, 1).
  static constexpr Address of(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                              std::uint8_t d) {
    return Address((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                   (std::uint32_t{c} << 8) | std::uint32_t{d});
  }

  [[nodiscard]] constexpr std::uint32_t bits() const { return bits_; }
  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(Address, Address) = default;
  friend constexpr auto operator<=>(Address, Address) = default;

 private:
  std::uint32_t bits_ = 0;
};

/// A CIDR prefix: the leading `length` bits of `base` are significant.
class Prefix {
 public:
  constexpr Prefix() = default;
  constexpr Prefix(Address base, int length) : base_(base), length_(length) {}

  /// The all-matching default route (0.0.0.0/0).
  static constexpr Prefix any() { return Prefix(Address(0), 0); }
  /// A /32 covering exactly one address.
  static constexpr Prefix host(Address a) { return Prefix(a, 32); }

  [[nodiscard]] constexpr Address base() const { return base_; }
  [[nodiscard]] constexpr int length() const { return length_; }

  [[nodiscard]] constexpr bool contains(Address a) const {
    if (length_ == 0) return true;
    const std::uint32_t mask = length_ >= 32
                                   ? ~std::uint32_t{0}
                                   : ~((std::uint32_t{1} << (32 - length_)) - 1);
    return (a.bits() & mask) == (base_.bits() & mask);
  }

  /// True if every address in `other` is also in *this.
  [[nodiscard]] constexpr bool covers(const Prefix& other) const {
    return length_ <= other.length_ && contains(other.base_);
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const Prefix&, const Prefix&) = default;

 private:
  Address base_;
  int length_ = 0;
};

}  // namespace vmn

namespace std {
template <>
struct hash<vmn::Address> {
  size_t operator()(vmn::Address a) const noexcept {
    return std::hash<std::uint32_t>{}(a.bits());
  }
};
}  // namespace std
