#include "core/packet.hpp"

namespace vmn {

FlowKey Packet::flow() const {
  // Canonicalize so that flow(p) == flow(reverse(p)).
  if (std::tie(src, src_port) <= std::tie(dst, dst_port)) {
    return FlowKey{src, dst, src_port, dst_port};
  }
  return FlowKey{dst, src, dst_port, src_port};
}

Packet Packet::reversed() const {
  Packet r = *this;
  std::swap(r.src, r.dst);
  std::swap(r.src_port, r.dst_port);
  return r;
}

std::string Packet::to_string() const {
  std::string s = src.to_string() + ":" + std::to_string(src_port) + " -> " +
                  dst.to_string() + ":" + std::to_string(dst_port);
  if (origin) s += " origin=" + origin->to_string();
  if (malicious) s += " [malicious]";
  if (app_class != 0) s += " app=" + std::to_string(app_class);
  return s;
}

}  // namespace vmn
