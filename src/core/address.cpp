#include "core/address.hpp"

namespace vmn {

std::string Address::to_string() const {
  return std::to_string((bits_ >> 24) & 0xff) + "." +
         std::to_string((bits_ >> 16) & 0xff) + "." +
         std::to_string((bits_ >> 8) & 0xff) + "." +
         std::to_string(bits_ & 0xff);
}

std::string Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace vmn
