// Deterministic random number generation for scenario generators and
// property tests. All randomness in the library flows through Rng so that
// every experiment is reproducible from a seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace vmn {

/// Seeded pseudo-random generator (thin wrapper over std::mt19937_64).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform(std::int64_t lo, std::int64_t hi);
  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform01();
  /// Bernoulli trial.
  [[nodiscard]] bool chance(double p);
  /// Picks k distinct indices from [0, n).
  [[nodiscard]] std::vector<std::size_t> sample(std::size_t n, std::size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace vmn
