#include "core/trace.hpp"

#include <algorithm>

namespace vmn {

Trace::Trace(std::vector<Event> events) : events_(std::move(events)) {
  sort_by_time();
}

void Trace::add(Event e) { events_.push_back(std::move(e)); }

void Trace::sort_by_time() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) { return a.time < b.time; });
}

std::string Trace::to_string(
    const std::function<std::string(NodeId)>& node_name) const {
  std::string out;
  for (const Event& e : events_) {
    out += "t=" + std::to_string(e.time) + " " + vmn::to_string(e.kind) + " ";
    switch (e.kind) {
      case EventKind::send:
        out += node_name(e.from) + " -> " + node_name(e.to) + " : " +
               e.packet.to_string();
        break;
      case EventKind::receive:
        out += node_name(e.to) + " <- " + node_name(e.from) + " : " +
               e.packet.to_string();
        break;
      case EventKind::fail:
      case EventKind::recover:
        out += node_name(e.from);
        break;
    }
    out += "\n";
  }
  return out;
}

}  // namespace vmn
