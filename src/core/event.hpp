// Concrete network events (paper, section 3.2): snd(s, d, p), rcv(d, s, p)
// and fail(n), each stamped with the discrete timestep at which it occurs.
#pragma once

#include <cstdint>
#include <string>

#include "core/ids.hpp"
#include "core/packet.hpp"

namespace vmn {

enum class EventKind : std::uint8_t {
  send,     ///< node `from` sends packet to node `to`
  receive,  ///< node `to` receives packet from node `from`
  fail,     ///< node `from` is down at this timestep
  recover,  ///< node `from` comes back up
};

[[nodiscard]] std::string to_string(EventKind kind);

/// One entry of a schedule or counterexample trace.
struct Event {
  EventKind kind = EventKind::send;
  std::int64_t time = 0;
  NodeId from;           ///< sender (send/receive) or failing node (fail)
  NodeId to;             ///< receiver; unused for fail/recover
  Packet packet;         ///< unused for fail/recover

  friend bool operator==(const Event&, const Event&) = default;
};

}  // namespace vmn
