// Small POSIX fd helpers shared by the subsystems that speak raw file
// descriptors (the process-backend dispatcher, the result cache's locked
// appends). One definition so retry semantics cannot drift between sites.
#pragma once

#include <errno.h>
#include <unistd.h>

#include <cstddef>
#include <string_view>

namespace vmn {

/// Writes all of `data`, retrying on EINTR and short writes. Returns false
/// on any real error (EPIPE, ENOSPC, ...); the caller decides whether that
/// means a dead peer or a degraded cache.
inline bool write_all_fd(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t w = ::write(fd, data.data() + sent, data.size() - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace vmn
