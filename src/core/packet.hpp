// Concrete packets, used by the simulator (src/sim) and by counterexample
// traces extracted from solver models. The symbolic counterpart is the
// uninterpreted Packet sort in the encoder (src/encode).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "core/address.hpp"

namespace vmn {

/// Canonical, direction-agnostic flow identifier: the paper's flow(p)
/// function. Two packets belong to the same flow iff their 5-tuples are
/// equal or exactly reversed.
struct FlowKey {
  Address a;
  Address b;
  std::uint16_t a_port = 0;
  std::uint16_t b_port = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
  friend auto operator<=>(const FlowKey&, const FlowKey&) = default;
};

/// A concrete packet. `origin` implements the paper's origin(p) abstraction
/// for data-isolation invariants (e.g. derived from x-http-forwarded-for);
/// `malicious` and `app_class` stand in for classification-oracle outputs.
struct Packet {
  Packet() = default;
  Packet(Address src_addr, Address dst_addr, std::uint16_t sport = 0,
         std::uint16_t dport = 0)
      : src(src_addr), dst(dst_addr), src_port(sport), dst_port(dport) {}

  Address src;
  Address dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  /// Where the carried data originated (data-isolation invariants).
  std::optional<Address> origin;
  /// Classification-oracle verdict used by IDPS/scrubber models.
  bool malicious = false;
  /// Application class tag assigned by the classification oracle
  /// (application firewalls); 0 means unclassified.
  std::uint16_t app_class = 0;

  /// Direction-agnostic flow identifier (paper's flow(p)).
  [[nodiscard]] FlowKey flow() const;
  /// The packet with src/dst (and ports) swapped.
  [[nodiscard]] Packet reversed() const;
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Packet&, const Packet&) = default;
};

}  // namespace vmn

namespace std {
template <>
struct hash<vmn::FlowKey> {
  size_t operator()(const vmn::FlowKey& f) const noexcept {
    size_t h = std::hash<vmn::Address>{}(f.a);
    h = h * 1000003u ^ std::hash<vmn::Address>{}(f.b);
    h = h * 1000003u ^ f.a_port;
    h = h * 1000003u ^ f.b_port;
    return h;
  }
};
}  // namespace std
