#include "core/event.hpp"

namespace vmn {

std::string to_string(EventKind kind) {
  switch (kind) {
    case EventKind::send:
      return "snd";
    case EventKind::receive:
      return "rcv";
    case EventKind::fail:
      return "fail";
    case EventKind::recover:
      return "recover";
  }
  return "?";
}

}  // namespace vmn
