// Pinned, process-independent hashing.
//
// FNV-1a 64: the one digest algorithm behind canonical-slice-key round
// compression (slice/symmetry.cpp) and the persistent result cache's key
// fingerprints (verify/result_cache.cpp). Those two must stay byte-for-byte
// in sync - the cache compares digests written by other processes and other
// builds - which is why this lives here instead of being re-rolled per use
// site, and why std::hash (implementation- and run-dependent) must never be
// substituted.
#pragma once

#include <cstdint>
#include <string_view>

namespace vmn {

inline constexpr std::uint64_t kFnv1a64Basis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnv1a64Prime = 1099511628211ull;

/// FNV-1a 64 of `data`, starting from `seed` (the standard offset basis by
/// default; pass a different seed to derive independent hash streams).
[[nodiscard]] constexpr std::uint64_t fnv1a64(
    std::string_view data, std::uint64_t seed = kFnv1a64Basis) {
  std::uint64_t h = seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= kFnv1a64Prime;
  }
  return h;
}

}  // namespace vmn
