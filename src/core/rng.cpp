#include "core/rng.hpp"

#include <algorithm>
#include <numeric>

namespace vmn {

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::uniform01() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

bool Rng::chance(double p) {
  return std::bernoulli_distribution(p)(engine_);
}

std::vector<std::size_t> Rng::sample(std::size_t n, std::size_t k) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::shuffle(idx.begin(), idx.end(), engine_);
  if (k < n) idx.resize(k);
  return idx;
}

}  // namespace vmn
