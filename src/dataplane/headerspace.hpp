// Header-space algebra (mini-HSA).
//
// The paper computes network transfer functions with HSA/VeriFlow
// (section 3.5); this module is our from-scratch implementation of the
// required machinery. A Wildcard is a ternary bit pattern over a fixed-width
// header; a HeaderSpace is a union of wildcards, closed under intersection,
// union, complement and difference (Kazemian et al., NSDI'12).
//
// The static analyses in this repository only need forwarding-relevant bits,
// so headers are 32 bits wide (the destination address).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/address.hpp"

namespace vmn::dataplane {

/// A ternary pattern over 32 header bits: bit i must equal bits[i] when
/// mask[i] is 1, and is free ("*") when mask[i] is 0.
class Wildcard {
 public:
  constexpr Wildcard() = default;  // matches everything
  constexpr Wildcard(std::uint32_t mask, std::uint32_t bits)
      : mask_(mask), bits_(bits & mask) {}

  /// Pattern matching exactly the addresses in a CIDR prefix.
  static Wildcard from_prefix(const Prefix& p);
  /// Pattern matching exactly one address.
  static Wildcard exact(Address a) { return Wildcard(~std::uint32_t{0}, a.bits()); }
  /// The all-* pattern.
  static constexpr Wildcard any() { return Wildcard(); }

  [[nodiscard]] std::uint32_t mask() const { return mask_; }
  [[nodiscard]] std::uint32_t bits() const { return bits_; }

  [[nodiscard]] bool matches(Address a) const {
    return (a.bits() & mask_) == bits_;
  }

  /// Intersection; nullopt when the patterns conflict on a fixed bit.
  [[nodiscard]] std::optional<Wildcard> intersect(const Wildcard& o) const;
  /// True if every header matching *this also matches `o`.
  [[nodiscard]] bool subset_of(const Wildcard& o) const;
  /// Complement as a union of at most 32 wildcards (one per fixed bit).
  [[nodiscard]] std::vector<Wildcard> complement() const;
  /// Number of concrete headers matched (2^free-bits).
  [[nodiscard]] std::uint64_t size() const;
  /// The numerically smallest matching address.
  [[nodiscard]] Address min_member() const { return Address(bits_); }

  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const Wildcard&, const Wildcard&) = default;

 private:
  std::uint32_t mask_ = 0;  // 0 bits are wildcards
  std::uint32_t bits_ = 0;
};

/// A union of wildcards. Empty vector = empty space.
class HeaderSpace {
 public:
  HeaderSpace() = default;
  explicit HeaderSpace(Wildcard w) : terms_{w} {}
  explicit HeaderSpace(std::vector<Wildcard> terms) : terms_(std::move(terms)) {}

  static HeaderSpace empty() { return HeaderSpace(); }
  static HeaderSpace all() { return HeaderSpace(Wildcard::any()); }
  static HeaderSpace from_prefix(const Prefix& p) {
    return HeaderSpace(Wildcard::from_prefix(p));
  }

  [[nodiscard]] bool is_empty() const;
  [[nodiscard]] bool contains(Address a) const;
  [[nodiscard]] HeaderSpace union_with(const HeaderSpace& o) const;
  [[nodiscard]] HeaderSpace intersect(const HeaderSpace& o) const;
  [[nodiscard]] HeaderSpace complement() const;
  [[nodiscard]] HeaderSpace difference(const HeaderSpace& o) const;
  [[nodiscard]] bool subset_of(const HeaderSpace& o) const;
  /// Exact count of concrete headers in the space.
  [[nodiscard]] std::uint64_t size() const;
  /// Some concrete member address, if non-empty.
  [[nodiscard]] std::optional<Address> sample() const;

  [[nodiscard]] const std::vector<Wildcard>& terms() const { return terms_; }
  [[nodiscard]] std::string to_string() const;

 private:
  /// Drops terms subsumed by other terms.
  void compact();

  std::vector<Wildcard> terms_;
};

}  // namespace vmn::dataplane
