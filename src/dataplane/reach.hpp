// Static-datapath analyses in the style of VeriFlow / HSA:
//   - destination equivalence classes (VeriFlow's core trick): addresses
//     that no forwarding rule distinguishes,
//   - a full header-space reachability sweep from an edge node,
//   - a loop / blackhole audit across edge nodes and addresses.
//
// These are the "existing verification tools for static datapaths" the paper
// composes with (sections 1 and 2.3), built from scratch here.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dataplane/headerspace.hpp"
#include "dataplane/transfer.hpp"
#include "net/topology.hpp"

namespace vmn::dataplane {

/// One representative address per destination equivalence class: two
/// addresses fall in the same class iff every rule of every (effective)
/// table treats them identically. Returned representatives are the lowest
/// address of each class.
[[nodiscard]] std::vector<Address> destination_classes(
    const net::Network& network, ScenarioId scenario);

/// Header spaces (over destination addresses) delivered to each edge node
/// when injected at `from_edge`, computed by symbolic propagation through
/// the switch graph.
[[nodiscard]] std::map<NodeId, HeaderSpace> hsa_reach(
    const net::Network& network, ScenarioId scenario, NodeId from_edge);

struct LoopFinding {
  NodeId from_edge;
  Address dst;
  std::string detail;
};

struct BlackholeFinding {
  NodeId from_edge;
  Address dst;
};

/// Exhaustive loop / blackhole audit over all edge nodes and the given
/// addresses (use destination_classes() representatives for completeness).
struct AuditReport {
  std::vector<LoopFinding> loops;
  std::vector<BlackholeFinding> blackholes;
  [[nodiscard]] bool clean() const { return loops.empty() && blackholes.empty(); }
};

[[nodiscard]] AuditReport audit(const net::Network& network, ScenarioId scenario,
                                const std::vector<Address>& addresses);

}  // namespace vmn::dataplane
