#include "dataplane/headerspace.hpp"

#include <algorithm>
#include <bit>

namespace vmn::dataplane {

Wildcard Wildcard::from_prefix(const Prefix& p) {
  if (p.length() <= 0) return Wildcard();
  const std::uint32_t mask =
      p.length() >= 32 ? ~std::uint32_t{0}
                       : ~((std::uint32_t{1} << (32 - p.length())) - 1);
  return Wildcard(mask, p.base().bits());
}

std::optional<Wildcard> Wildcard::intersect(const Wildcard& o) const {
  const std::uint32_t common = mask_ & o.mask_;
  if ((bits_ & common) != (o.bits_ & common)) return std::nullopt;
  return Wildcard(mask_ | o.mask_, bits_ | o.bits_);
}

bool Wildcard::subset_of(const Wildcard& o) const {
  // Every bit fixed in o must be fixed to the same value here.
  if ((mask_ & o.mask_) != o.mask_) return false;
  return (bits_ & o.mask_) == o.bits_;
}

std::vector<Wildcard> Wildcard::complement() const {
  // Disjoint decomposition: the i-th term matches headers that agree with us
  // on all fixed bits below i and differ at fixed bit i.
  std::vector<Wildcard> out;
  std::uint32_t seen = 0;
  for (int i = 0; i < 32; ++i) {
    const std::uint32_t bit = std::uint32_t{1} << i;
    if (mask_ & bit) {
      out.emplace_back(seen | bit, (bits_ & seen) | (~bits_ & bit));
      seen |= bit;
    }
  }
  return out;
}

std::uint64_t Wildcard::size() const {
  const int free_bits = 32 - std::popcount(mask_);
  return std::uint64_t{1} << free_bits;
}

std::string Wildcard::to_string() const {
  std::string s;
  s.reserve(32);
  for (int i = 31; i >= 0; --i) {
    const std::uint32_t bit = std::uint32_t{1} << i;
    if (!(mask_ & bit)) {
      s += '*';
    } else {
      s += (bits_ & bit) ? '1' : '0';
    }
  }
  return s;
}

bool HeaderSpace::is_empty() const { return terms_.empty(); }

bool HeaderSpace::contains(Address a) const {
  return std::any_of(terms_.begin(), terms_.end(),
                     [&](const Wildcard& w) { return w.matches(a); });
}

HeaderSpace HeaderSpace::union_with(const HeaderSpace& o) const {
  std::vector<Wildcard> terms = terms_;
  terms.insert(terms.end(), o.terms_.begin(), o.terms_.end());
  HeaderSpace out(std::move(terms));
  out.compact();
  return out;
}

HeaderSpace HeaderSpace::intersect(const HeaderSpace& o) const {
  std::vector<Wildcard> terms;
  for (const Wildcard& a : terms_) {
    for (const Wildcard& b : o.terms_) {
      if (auto w = a.intersect(b)) terms.push_back(*w);
    }
  }
  HeaderSpace out(std::move(terms));
  out.compact();
  return out;
}

HeaderSpace HeaderSpace::complement() const {
  HeaderSpace acc = HeaderSpace::all();
  for (const Wildcard& w : terms_) {
    acc = acc.intersect(HeaderSpace(w.complement()));
    if (acc.is_empty()) break;
  }
  return acc;
}

HeaderSpace HeaderSpace::difference(const HeaderSpace& o) const {
  return intersect(o.complement());
}

bool HeaderSpace::subset_of(const HeaderSpace& o) const {
  return difference(o).is_empty();
}

namespace {

// Exact cardinality of a union via recursive disjoint decomposition:
// |t0 u rest| = |t0| + |rest \ t0|, where each r \ t0 splits into
// r n c_i over the disjoint complement terms c_i of t0.
std::uint64_t disjoint_size(std::vector<Wildcard> terms) {
  if (terms.empty()) return 0;
  const Wildcard head = terms.front();
  std::vector<Wildcard> rest;
  const std::vector<Wildcard> head_complement = head.complement();
  for (std::size_t i = 1; i < terms.size(); ++i) {
    for (const Wildcard& c : head_complement) {
      if (auto piece = terms[i].intersect(c)) rest.push_back(*piece);
    }
  }
  return head.size() + disjoint_size(std::move(rest));
}

}  // namespace

std::uint64_t HeaderSpace::size() const { return disjoint_size(terms_); }

std::optional<Address> HeaderSpace::sample() const {
  if (terms_.empty()) return std::nullopt;
  return terms_.front().min_member();
}

void HeaderSpace::compact() {
  std::vector<Wildcard> kept;
  for (const Wildcard& w : terms_) {
    const bool subsumed = std::any_of(
        kept.begin(), kept.end(),
        [&](const Wildcard& k) { return w.subset_of(k); });
    if (subsumed) continue;
    std::erase_if(kept, [&](const Wildcard& k) { return k.subset_of(w); });
    kept.push_back(w);
  }
  terms_ = std::move(kept);
}

std::string HeaderSpace::to_string() const {
  if (terms_.empty()) return "(empty)";
  std::string s;
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    if (i) s += " + ";
    s += terms_[i].to_string();
  }
  return s;
}

}  // namespace vmn::dataplane
