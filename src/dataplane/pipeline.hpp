// Pipeline invariants (paper, sections 1 and 2.3).
//
// A pipeline invariant constrains which middleboxes (by type) a packet must
// traverse on its way from a source to a destination: "all incoming packets
// ... must pass through the sequence of middleboxes mb1, mb2, ... before
// being delivered". The paper checks these on the *static* datapath using
// existing tools; this module implements that check over our transfer
// functions. Steps name middlebox types by node-name prefix (e.g. "fw"
// matches fw-1, fw-backup); a step may also name one concrete instance.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dataplane/transfer.hpp"

namespace vmn::dataplane {

struct PipelineStep {
  /// Matches any middlebox whose name starts with this prefix.
  std::string type_prefix;
};

struct PipelineInvariant {
  NodeId src_edge;
  Address dst;
  /// Steps that must appear in the traversal chain, in this order
  /// (not necessarily consecutively).
  std::vector<PipelineStep> steps;
};

struct PipelineResult {
  bool satisfied = false;
  /// True when the packet actually reaches the destination; vacuous
  /// satisfaction (packet dropped) is reported as satisfied+!delivered.
  bool delivered = false;
  std::vector<NodeId> chain;  ///< middleboxes traversed, in order
  std::optional<std::size_t> first_missing_step;
};

/// Checks one pipeline invariant under the transfer function's scenario.
[[nodiscard]] PipelineResult check_pipeline(const TransferFunction& tf,
                                            const PipelineInvariant& invariant);

}  // namespace vmn::dataplane
