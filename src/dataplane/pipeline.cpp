#include "dataplane/pipeline.hpp"

namespace vmn::dataplane {

PipelineResult check_pipeline(const TransferFunction& tf,
                              const PipelineInvariant& invariant) {
  const net::Network& net = tf.network();
  PipelineResult result;
  EdgeChain chain = edge_chain(tf, invariant.src_edge, invariant.dst);
  result.chain = chain.middleboxes;
  result.delivered = chain.reached;
  if (!chain.reached) {
    // The packet never arrives; the pipeline requirement is vacuously met.
    result.satisfied = true;
    return result;
  }
  std::size_t next_step = 0;
  for (NodeId m : chain.middleboxes) {
    if (next_step >= invariant.steps.size()) break;
    if (net.name(m).starts_with(invariant.steps[next_step].type_prefix)) {
      ++next_step;
    }
  }
  if (next_step < invariant.steps.size()) {
    result.first_missing_step = next_step;
    result.satisfied = false;
  } else {
    result.satisfied = true;
  }
  return result;
}

}  // namespace vmn::dataplane
