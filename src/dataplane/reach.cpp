#include "dataplane/reach.hpp"

#include <algorithm>
#include <set>

#include "core/error.hpp"

namespace vmn::dataplane {

std::vector<Address> destination_classes(const net::Network& network,
                                         ScenarioId scenario) {
  // Collect interval boundaries from every prefix in every effective table,
  // plus every host address (hosts are distinguishable destinations even
  // without a matching rule).
  std::set<std::uint64_t> starts;  // 64-bit to hold 2^32 as an end marker
  starts.insert(0);
  auto add_prefix = [&](const Prefix& p) {
    const std::uint64_t lo = Wildcard::from_prefix(p).bits();
    const std::uint64_t size = Wildcard::from_prefix(p).size();
    starts.insert(lo);
    starts.insert(lo + size);
  };
  for (const auto& node : network.nodes()) {
    if (node.kind == net::NodeKind::switch_node) {
      for (const net::Rule& r :
           network.effective_table(node.id, scenario).rules()) {
        add_prefix(r.dst);
      }
    } else if (node.kind == net::NodeKind::host) {
      add_prefix(Prefix::host(node.address));
    }
  }
  std::vector<Address> reps;
  for (std::uint64_t s : starts) {
    if (s < (std::uint64_t{1} << 32)) {
      reps.emplace_back(static_cast<std::uint32_t>(s));
    }
  }
  return reps;
}

std::map<NodeId, HeaderSpace> hsa_reach(const net::Network& network,
                                        ScenarioId scenario, NodeId from_edge) {
  std::map<NodeId, HeaderSpace> delivered;
  if (!network.is_edge(from_edge)) {
    throw ModelError("hsa_reach requires an edge node");
  }
  // Failed edge nodes may still source packets (fail-open middleboxes keep
  // forwarding); consistent with TransferFunction::walk.

  struct Item {
    NodeId prev;
    NodeId at;
    HeaderSpace space;
    std::size_t depth;
  };
  std::vector<Item> work;
  for (NodeId n : network.neighbors(from_edge)) {
    if (network.is_failed(n, scenario)) continue;
    if (network.kind(n) == net::NodeKind::switch_node) {
      work.push_back(Item{from_edge, n, HeaderSpace::all(), 0});
      break;  // edge nodes enter the fabric through their first alive switch
    }
    if (network.kind(n) == net::NodeKind::host) {
      auto& hs = delivered[n];
      hs = hs.union_with(
          HeaderSpace::from_prefix(Prefix::host(network.node(n).address)));
    }
  }

  const std::size_t max_depth = network.node_count() + 1;
  while (!work.empty()) {
    Item item = std::move(work.back());
    work.pop_back();
    if (item.depth > max_depth) {
      throw ForwardingLoopError("header-space propagation exceeded diameter at " +
                                network.name(item.at));
    }
    const net::ForwardingTable& table =
        network.effective_table(item.at, scenario);
    // Rules that can apply to packets arriving from item.prev, ranked the
    // same way ForwardingTable::match ranks them.
    std::vector<const net::Rule*> rules;
    for (const net::Rule& r : table.rules()) {
      if (r.in_from && *r.in_from != item.prev) continue;
      rules.push_back(&r);
    }
    std::stable_sort(rules.begin(), rules.end(),
                     [](const net::Rule* a, const net::Rule* b) {
                       const auto rank = [](const net::Rule& x) {
                         return std::tuple(x.dst.length(),
                                           x.in_from.has_value() ? 1 : 0,
                                           x.priority);
                       };
                       return rank(*a) > rank(*b);
                     });
    HeaderSpace remaining = item.space;
    for (const net::Rule* r : rules) {
      if (remaining.is_empty()) break;
      const HeaderSpace rule_space = HeaderSpace::from_prefix(r->dst);
      HeaderSpace taken = remaining.intersect(rule_space);
      if (taken.is_empty()) continue;
      remaining = remaining.difference(rule_space);
      if (network.is_failed(r->next_hop, scenario) &&
          !network.is_edge(r->next_hop)) {
        continue;  // failed switch: dropped (failed edges still receive)
      }
      if (network.is_edge(r->next_hop)) {
        auto& hs = delivered[r->next_hop];
        hs = hs.union_with(taken);
      } else {
        work.push_back(Item{item.at, r->next_hop, std::move(taken),
                            item.depth + 1});
      }
    }
    // `remaining` is blackholed at this switch.
  }
  return delivered;
}

AuditReport audit(const net::Network& network, ScenarioId scenario,
                  const std::vector<Address>& addresses) {
  AuditReport report;
  TransferFunction tf(network, scenario);
  for (const auto& node : network.nodes()) {
    if (node.kind == net::NodeKind::switch_node) continue;
    if (network.is_failed(node.id, scenario)) continue;
    for (Address a : addresses) {
      if (node.kind == net::NodeKind::host && node.address == a) continue;
      try {
        auto path = tf.path(node.id, a);
        if (path.size() < 2) {
          report.blackholes.push_back(BlackholeFinding{node.id, a});
        }
      } catch (const ForwardingLoopError& e) {
        report.loops.push_back(LoopFinding{node.id, a, e.what()});
      }
    }
  }
  return report;
}

}  // namespace vmn::dataplane
