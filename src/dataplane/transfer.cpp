#include "dataplane/transfer.hpp"

#include <set>

#include "core/error.hpp"

namespace vmn::dataplane {

namespace {

std::uint64_t cache_key(NodeId from, Address dst) {
  return (std::uint64_t{from.value()} << 32) | dst.bits();
}

}  // namespace

TransferFunction::TransferFunction(const net::Network& network,
                                   ScenarioId scenario)
    : network_(&network), scenario_(scenario) {
  // Validate the scenario id eagerly.
  (void)network.scenario(scenario);
}

std::vector<NodeId> TransferFunction::walk(NodeId from_edge, Address dst) const {
  const net::Network& net = *network_;
  if (!net.is_edge(from_edge)) {
    throw ModelError("transfer function input must be an edge node, got " +
                     net.name(from_edge));
  }
  std::vector<NodeId> path{from_edge};
  // Note: a failed *edge* node may still source packets here - whether a
  // down middlebox emits anything is decided by its own axioms (fail-open
  // boxes keep forwarding); the static datapath just carries packets.

  // Direct delivery: a neighboring edge node owning dst (host-host wiring).
  // Otherwise enter the switch fabric through the first alive neighbor
  // switch.
  NodeId prev = from_edge;
  std::optional<NodeId> cur;
  for (NodeId n : net.neighbors(from_edge)) {
    if (net.is_failed(n, scenario_)) continue;
    if (net.kind(n) == net::NodeKind::switch_node) {
      cur = n;
      break;
    }
    if (net.is_edge(n) && net.node(n).kind == net::NodeKind::host &&
        net.node(n).address == dst) {
      path.push_back(n);
      return path;
    }
  }
  if (!cur) return path;  // no alive attachment: dropped

  std::set<std::pair<NodeId, NodeId>> visited;  // (came_from, at-switch)
  while (true) {
    path.push_back(*cur);
    if (net.is_edge(*cur)) return path;  // delivered to an edge node
    if (!visited.insert({prev, *cur}).second) {
      throw ForwardingLoopError("forwarding loop at switch " + net.name(*cur) +
                                " for destination " + dst.to_string() +
                                " (scenario " +
                                net.scenario(scenario_).name + ")");
    }
    const auto next = net.effective_table(*cur, scenario_).match(prev, dst);
    // Drop on blackholes and on failed *switches*; failed edge nodes still
    // receive (their failure mode decides what happens next).
    if (!next || (net.is_failed(*next, scenario_) && !net.is_edge(*next))) {
      path.clear();
      return path;
    }
    prev = *cur;
    cur = next;
  }
}

std::optional<NodeId> TransferFunction::next_edge(NodeId from_edge,
                                                  Address dst) const {
  const auto key = cache_key(from_edge, dst);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  std::vector<NodeId> p = walk(from_edge, dst);
  std::optional<NodeId> result;
  if (p.size() >= 2 && network_->is_edge(p.back())) result = p.back();
  cache_.emplace(key, result);
  return result;
}

std::vector<NodeId> TransferFunction::path(NodeId from_edge, Address dst) const {
  return walk(from_edge, dst);
}

const TransferFunction& TransferCache::at(ScenarioId scenario) {
  auto it = entries_.find(scenario.value());
  if (it != entries_.end()) {
    ++reuses_;
    return *it->second;
  }
  auto [pos, _] = entries_.emplace(
      scenario.value(), std::make_unique<TransferFunction>(*network_, scenario));
  return *pos->second;
}

EdgeChain edge_chain(const TransferFunction& tf, NodeId src_edge, Address dst) {
  const net::Network& net = tf.network();
  EdgeChain chain;
  NodeId at = src_edge;
  // Bound the chain by the number of edge nodes: revisiting a middlebox for
  // the same destination would recur forever (middlebox-level loop).
  const std::size_t limit = net.node_count() + 1;
  for (std::size_t steps = 0; steps < limit; ++steps) {
    auto next = tf.next_edge(at, dst);
    if (!next) return chain;  // dropped in the fabric
    chain.final_edge = *next;
    if (net.kind(*next) == net::NodeKind::host) {
      chain.reached = net.node(*next).address == dst;
      return chain;
    }
    chain.middleboxes.push_back(*next);
    at = *next;
  }
  throw ForwardingLoopError(
      "middlebox-level forwarding loop toward " + dst.to_string() +
      " starting at " + net.name(src_edge));
}

}  // namespace vmn::dataplane
