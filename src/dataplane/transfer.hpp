// Network transfer functions (paper, section 3.5).
//
// A transfer function maps a located packet - (edge node, destination
// address) - to the next edge node the static datapath delivers it to, for a
// given failure scenario. It is computed by walking the switch graph under
// the scenario's effective forwarding tables, skipping failed nodes. A
// revisited (switch, previous-hop) pair means the forwarding state loops:
// we raise ForwardingLoopError, mirroring the paper ("VMN throws an
// exception when a static forwarding loop is encountered").
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/address.hpp"
#include "core/ids.hpp"
#include "net/topology.hpp"

namespace vmn::dataplane {

/// The transfer function of `network` under one failure scenario.
/// Results are memoized; the object holds a reference to the network and
/// must not outlive it.
class TransferFunction {
 public:
  TransferFunction(const net::Network& network, ScenarioId scenario);

  /// Edge node that a packet injected at `from_edge` with destination
  /// address `dst` is delivered to; nullopt if dropped (no route, failed
  /// next hop, or failed target).
  [[nodiscard]] std::optional<NodeId> next_edge(NodeId from_edge,
                                                Address dst) const;

  /// Full node path (switches included) of the same walk; empty when the
  /// packet is dropped before reaching another edge node.
  [[nodiscard]] std::vector<NodeId> path(NodeId from_edge, Address dst) const;

  [[nodiscard]] ScenarioId scenario() const { return scenario_; }
  [[nodiscard]] const net::Network& network() const { return *network_; }

 private:
  [[nodiscard]] std::vector<NodeId> walk(NodeId from_edge, Address dst) const;

  const net::Network* network_;
  ScenarioId scenario_;
  mutable std::unordered_map<std::uint64_t, std::optional<NodeId>> cache_;
};

/// The chain of *edge* nodes a packet visits from `src_host` toward `dst`,
/// treating middleboxes as transparent (each re-emits the packet unchanged
/// toward the same destination). The chain ends at the edge node owning
/// `dst`, or earlier if the packet is dropped ('reached' tells which).
/// Used for pipeline-invariant checking and slice closure.
struct EdgeChain {
  std::vector<NodeId> middleboxes;  ///< in traversal order
  std::optional<NodeId> final_edge;
  bool reached = false;  ///< true iff final_edge owns dst
};

[[nodiscard]] EdgeChain edge_chain(const TransferFunction& tf, NodeId src_edge,
                                   Address dst);

}  // namespace vmn::dataplane
