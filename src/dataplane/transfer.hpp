// Network transfer functions (paper, section 3.5).
//
// A transfer function maps a located packet - (edge node, destination
// address) - to the next edge node the static datapath delivers it to, for a
// given failure scenario. It is computed by walking the switch graph under
// the scenario's effective forwarding tables, skipping failed nodes. A
// revisited (switch, previous-hop) pair means the forwarding state loops:
// we raise ForwardingLoopError, mirroring the paper ("VMN throws an
// exception when a static forwarding loop is encountered").
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/address.hpp"
#include "core/ids.hpp"
#include "net/topology.hpp"

namespace vmn::dataplane {

/// The transfer function of `network` under one failure scenario.
/// Results are memoized; the object holds a reference to the network and
/// must not outlive it.
class TransferFunction {
 public:
  TransferFunction(const net::Network& network, ScenarioId scenario);

  /// Edge node that a packet injected at `from_edge` with destination
  /// address `dst` is delivered to; nullopt if dropped (no route, failed
  /// next hop, or failed target).
  [[nodiscard]] std::optional<NodeId> next_edge(NodeId from_edge,
                                                Address dst) const;

  /// Full node path (switches included) of the same walk; empty when the
  /// packet is dropped before reaching another edge node.
  [[nodiscard]] std::vector<NodeId> path(NodeId from_edge, Address dst) const;

  [[nodiscard]] ScenarioId scenario() const { return scenario_; }
  [[nodiscard]] const net::Network& network() const { return *network_; }

 private:
  [[nodiscard]] std::vector<NodeId> walk(NodeId from_edge, Address dst) const;

  const net::Network* network_;
  ScenarioId scenario_;
  mutable std::unordered_map<std::uint64_t, std::optional<NodeId>> cache_;
};

/// Memoizes one TransferFunction per failure scenario of a fixed network.
///
/// Constructing a TransferFunction is cheap, but its per-(edge, destination)
/// walk results accumulate in an internal memo - so rebuilding one per use
/// site (as slice computation and canonical keys each did per invariant)
/// repeats identical fabric walks. A cache instance is single-threaded, like
/// the TransferFunctions it hands out; share it only within one planning
/// pass, never across worker threads.
class TransferCache {
 public:
  explicit TransferCache(const net::Network& network) : network_(&network) {}

  /// The memoized transfer function for `scenario` (built on first use).
  [[nodiscard]] const TransferFunction& at(ScenarioId scenario);

  [[nodiscard]] const net::Network& network() const { return *network_; }
  /// Distinct scenarios built / requests answered from the memo.
  [[nodiscard]] std::size_t builds() const { return entries_.size(); }
  [[nodiscard]] std::size_t reuses() const { return reuses_; }

 private:
  const net::Network* network_;
  std::unordered_map<ScenarioId::underlying_type,
                     std::unique_ptr<TransferFunction>>
      entries_;
  std::size_t reuses_ = 0;
};

/// The chain of *edge* nodes a packet visits from `src_host` toward `dst`,
/// treating middleboxes as transparent (each re-emits the packet unchanged
/// toward the same destination). The chain ends at the edge node owning
/// `dst`, or earlier if the packet is dropped ('reached' tells which).
/// Used for pipeline-invariant checking and slice closure.
struct EdgeChain {
  std::vector<NodeId> middleboxes;  ///< in traversal order
  std::optional<NodeId> final_edge;
  bool reached = false;  ///< true iff final_edge owns dst
};

[[nodiscard]] EdgeChain edge_chain(const TransferFunction& tf, NodeId src_edge,
                                   Address dst);

}  // namespace vmn::dataplane
