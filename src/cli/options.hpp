// Shared command-line option parsing for the vmn front end.
//
// Every subcommand (verify, fuzz, serve, worker-launching paths) declares
// its flags into an OptionSet and calls parse() - one strict parser
// instead of per-subcommand strcmp ladders. What the set gives you:
//
//  - `--name value` and `--name=value` both accepted; a flag given an
//    `=value` is an error, a value option missing its argument is an error;
//  - strict numerics via the parse_* helpers (whole-token, range-checked:
//    atoi-style "read garbage as 0" and negative-count wraparounds are
//    structurally impossible);
//  - `--help` is implicit on every set and prints a usage page assembled
//    from the declarations (name, value placeholder, help text);
//  - unknown options name themselves in the error; positional operands are
//    collected only when the caller asks for them.
//
// The apply callbacks run as flags are parsed, in command-line order, so
// later options override earlier ones exactly like the hand-rolled loops
// they replace.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace vmn::cli {

/// Strict whole-token signed parse into [lo, hi]. Rejects empty strings,
/// trailing junk, and out-of-range values (including everything strtoll
/// clamps). Returns false without touching `out` on failure.
[[nodiscard]] bool parse_int(const std::string& text, long long lo,
                             long long hi, long long& out);

/// Strict whole-token unsigned parse. Rejects empty, junk, and "-0"-style
/// negatives that strtoull silently wraps.
[[nodiscard]] bool parse_u64(const std::string& text, std::uint64_t& out);

class OptionSet {
 public:
  /// `usage_line` is the synopsis ("vmn verify <spec-file> [options]");
  /// `summary` is the one-paragraph description printed under it.
  OptionSet(std::string usage_line, std::string summary);

  /// A boolean option: `--name`. `set` runs when the flag appears.
  void add_flag(const std::string& name, const std::string& help,
                std::function<void()> set);
  /// Convenience: `--name` stores `value` into `*target`.
  void add_flag(const std::string& name, const std::string& help,
                bool* target, bool value = true);

  /// An option taking one argument: `--name <value_name>` or
  /// `--name=<value>`. `apply` returns false (filling `error`) to reject
  /// the argument - the message is reported with the option's name.
  void add_value(const std::string& name, const std::string& value_name,
                 const std::string& help,
                 std::function<bool(const std::string& text,
                                    std::string& error)> apply);

  /// Convenience: `--name <s>` stores the raw string.
  void add_string(const std::string& name, const std::string& value_name,
                  const std::string& help, std::string* target);

  /// A cross-flag validation run after every token parsed cleanly (so it
  /// sees the settled values regardless of option order). Returning false
  /// (filling `error`) turns the parse into Result::error - the message
  /// plus usage go to stderr exactly like a bad single option. Checks run
  /// in registration order; the first failure reports.
  void add_check(std::function<bool(std::string& error)> check);

  enum class Result {
    ok,     ///< parsed cleanly; proceed
    help,   ///< --help printed to stdout; exit 0
    error,  ///< message + usage printed to stderr; exit with usage status
  };

  /// Parses argv[0..argc). Non-option tokens go to `positionals` when
  /// given, otherwise they are an error ("unexpected operand").
  [[nodiscard]] Result parse(int argc, char** argv,
                             std::vector<std::string>* positionals =
                                 nullptr) const;

  /// The assembled help page (what --help prints).
  [[nodiscard]] std::string usage() const;

 private:
  struct Opt {
    std::string name;        // with leading dashes: "--jobs"
    std::string value_name;  // "" for flags
    std::string help;
    bool takes_value = false;
    std::function<bool(const std::string&, std::string&)> apply;
  };
  [[nodiscard]] const Opt* find(const std::string& name) const;

  std::string usage_line_;
  std::string summary_;
  std::vector<Opt> opts_;
  std::vector<std::function<bool(std::string&)>> checks_;
};

}  // namespace vmn::cli
