#include "cli/options.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace vmn::cli {

bool parse_int(const std::string& text, long long lo, long long hi,
               long long& out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) return false;
  if (v < lo || v > hi) return false;
  out = v;
  return true;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  // strtoull wraps "-1" to UINT64_MAX; reject any sign explicitly.
  if (text[0] == '-' || text[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) return false;
  out = v;
  return true;
}

OptionSet::OptionSet(std::string usage_line, std::string summary)
    : usage_line_(std::move(usage_line)), summary_(std::move(summary)) {}

void OptionSet::add_flag(const std::string& name, const std::string& help,
                         std::function<void()> set) {
  Opt opt;
  opt.name = name;
  opt.help = help;
  opt.takes_value = false;
  opt.apply = [set = std::move(set)](const std::string&, std::string&) {
    set();
    return true;
  };
  opts_.push_back(std::move(opt));
}

void OptionSet::add_flag(const std::string& name, const std::string& help,
                         bool* target, bool value) {
  add_flag(name, help, [target, value] { *target = value; });
}

void OptionSet::add_value(
    const std::string& name, const std::string& value_name,
    const std::string& help,
    std::function<bool(const std::string&, std::string&)> apply) {
  Opt opt;
  opt.name = name;
  opt.value_name = value_name;
  opt.help = help;
  opt.takes_value = true;
  opt.apply = std::move(apply);
  opts_.push_back(std::move(opt));
}

void OptionSet::add_string(const std::string& name,
                           const std::string& value_name,
                           const std::string& help, std::string* target) {
  add_value(name, value_name, help,
            [target](const std::string& text, std::string&) {
              *target = text;
              return true;
            });
}

void OptionSet::add_check(std::function<bool(std::string&)> check) {
  checks_.push_back(std::move(check));
}

const OptionSet::Opt* OptionSet::find(const std::string& name) const {
  for (const Opt& opt : opts_) {
    if (opt.name == name) return &opt;
  }
  return nullptr;
}

std::string OptionSet::usage() const {
  std::ostringstream os;
  os << "usage: " << usage_line_ << "\n";
  if (!summary_.empty()) os << summary_ << "\n";
  if (!opts_.empty()) os << "options:\n";
  // Two columns: "  --name VALUE" padded, then the help text.
  std::size_t width = 0;
  for (const Opt& opt : opts_) {
    std::size_t w = opt.name.size();
    if (opt.takes_value) w += 1 + opt.value_name.size();
    width = std::max(width, w);
  }
  for (const Opt& opt : opts_) {
    std::string left = opt.name;
    if (opt.takes_value) left += " " + opt.value_name;
    os << "  " << left;
    for (std::size_t i = left.size(); i < width + 2; ++i) os << ' ';
    os << opt.help << "\n";
  }
  os << "  --help";
  for (std::size_t i = 6; i < width + 2; ++i) os << ' ';
  os << "show this help\n";
  return os.str();
}

OptionSet::Result OptionSet::parse(
    int argc, char** argv, std::vector<std::string>* positionals) const {
  for (int i = 0; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      std::fputs(usage().c_str(), stdout);
      return Result::help;
    }
    if (token.rfind("--", 0) != 0) {
      if (positionals != nullptr) {
        positionals->push_back(std::move(token));
        continue;
      }
      std::fprintf(stderr, "unexpected operand: %s\n%s", token.c_str(),
                   usage().c_str());
      return Result::error;
    }
    std::string name = token;
    std::string inline_value;
    bool has_inline = false;
    const std::size_t eq = token.find('=');
    if (eq != std::string::npos) {
      name = token.substr(0, eq);
      inline_value = token.substr(eq + 1);
      has_inline = true;
    }
    const Opt* opt = find(name);
    if (opt == nullptr) {
      std::fprintf(stderr, "unknown option: %s\n%s", name.c_str(),
                   usage().c_str());
      return Result::error;
    }
    std::string value;
    if (opt->takes_value) {
      if (has_inline) {
        value = inline_value;
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "%s wants a %s argument\n%s", name.c_str(),
                     opt->value_name.c_str(), usage().c_str());
        return Result::error;
      }
    } else if (has_inline) {
      std::fprintf(stderr, "%s does not take a value\n%s", name.c_str(),
                   usage().c_str());
      return Result::error;
    }
    std::string error;
    if (!opt->apply(value, error)) {
      std::fprintf(stderr, "%s: %s\n%s", name.c_str(),
                   error.empty() ? "invalid argument" : error.c_str(),
                   usage().c_str());
      return Result::error;
    }
  }
  for (const auto& check : checks_) {
    std::string error;
    if (!check(error)) {
      std::fprintf(stderr, "%s\n%s",
                   error.empty() ? "invalid option combination"
                                 : error.c_str(),
                   usage().c_str());
      return Result::error;
    }
  }
  return Result::ok;
}

}  // namespace vmn::cli
