// The uniform invariant-batch shape every scenario generator exports.
//
// ParallelVerifier, the CLI --batch mode, the parallel tests and the
// scaling benchmark all consume scenarios through this one interface
// instead of each scenario's bespoke accessors.
#pragma once

#include <string>
#include <vector>

#include "encode/invariant.hpp"

namespace vmn::scenarios {

struct Batch {
  std::string name;
  std::vector<encode::Invariant> invariants;
  /// Aligned expected outcome for the as-generated configuration: true
  /// means the invariant holds (for reachability: the path exists).
  std::vector<bool> expected_holds;

  [[nodiscard]] std::size_t size() const { return invariants.size(); }
};

}  // namespace vmn::scenarios
