// Seeded random specification generator (the fuzzing workload).
//
// Where the other generators reproduce the paper's hand-shaped topologies,
// this one samples the whole input space the engines claim to handle:
// random switch fabrics, random host placements, middleboxes drawn from the
// entire src/mbox zoo with randomized configurations, random service
// chains, failure scenarios (node failures and routing misconfigurations)
// and random invariants of every kind. Generation is fully deterministic
// from the seed - all randomness flows through core/rng - and the result is
// canonicalized as .vmn text, so a seed IS a reproducible test case and a
// byte-identical regeneration is the fuzzer's first self-check.
//
// Construction invariants (what keeps generated specs meaningful rather
// than degenerate):
//   - switches form a random connected tree (plus occasional redundant
//     links); per-destination routes follow BFS toward the owner, so the
//     static datapath is loop-free by construction;
//   - service chains (in-port rules, the OneBoxNet pattern) only enlist
//     pass-through middlebox types; address-rewriting boxes that drop
//     unrelated traffic (NAT, load balancer, proxy) are reached through
//     their implicit addresses instead, which get routes of their own;
//   - failure scenarios fail at most `max_failures` middleboxes, and
//     routing-only scenarios carry a chain-bypassing route override (the
//     ISP section 5.3.3 misconfiguration shape).
#pragma once

#include <cstdint>
#include <string>

#include "io/spec.hpp"

namespace vmn::scenarios {

struct RandomSpecParams {
  std::uint64_t seed = 0;
  int min_hosts = 2;
  int max_hosts = 5;
  int max_switches = 4;
  int max_middleboxes = 3;
  int max_scenarios = 2;
  /// Largest failed-node set any generated scenario may carry; the
  /// verification budget is derived back from the spec (see
  /// derived_max_failures), so it survives serialization.
  int max_failures = 1;
  int min_invariants = 2;
  int max_invariants = 6;
  /// Probability that a middlebox placed at a switch joins the service
  /// chain of a given destination host.
  double chain_probability = 0.5;
  /// Probability that a failure scenario additionally overrides a route to
  /// bypass a service chain (misconfiguration injection).
  double misroute_probability = 0.35;
};

/// One generated specification: the built model + invariants, and its
/// canonical .vmn serialization. `text` is what the fuzzer actually tests
/// (it re-parses it), so a reproducer is always faithful to what ran.
struct RandomSpec {
  io::Spec spec;
  std::string text;
  std::uint64_t seed = 0;
};

[[nodiscard]] RandomSpec make_random_spec(const RandomSpecParams& params);

/// The failure budget a spec implies: the size of its largest scenario
/// failed-node set. The .vmn grammar carries no budget directive, so the
/// fuzzer (and reproducer replay) derive it from the spec itself - which
/// makes shrunk reproducers self-contained.
[[nodiscard]] int derived_max_failures(const encode::NetworkModel& model);

}  // namespace vmn::scenarios
