#include "scenarios/segmented.hpp"

#include "mbox/idps.hpp"

namespace vmn::scenarios {

using encode::Invariant;

Batch Segmented::batch() const {
  return Batch{"segmented", invariants, expected_holds};
}

Segmented make_segmented(const SegmentedParams& params) {
  Segmented out;
  net::Network& net = out.model.network();

  for (int i = 0; i < params.segments; ++i) {
    const bool bypassed = i == params.bypass_segment;
    const bool isolated = i == params.isolated_segment;
    const auto seg = static_cast<std::uint8_t>(i);

    const Address srv_addr = Address::of(10, seg, 0, 100);
    NodeId srv = net.add_host("srv" + std::to_string(i), srv_addr);
    auto& idps = out.model.add_middlebox(std::make_unique<mbox::Idps>(
        "idps" + std::to_string(i), /*drop_malicious=*/true));
    NodeId sa = net.add_switch("s" + std::to_string(i) + "a");
    NodeId sb = net.add_switch("s" + std::to_string(i) + "b");
    net.add_link(idps.node(), sa);
    net.add_link(sa, sb);
    net.add_link(srv, sb);

    std::vector<NodeId> senders;
    for (int j = 0; j < params.senders_per_segment; ++j) {
      const Address addr =
          Address::of(10, seg, 0, static_cast<std::uint8_t>(j + 1));
      NodeId h = net.add_host(
          "h" + std::to_string(i) + "-" + std::to_string(j), addr);
      net.add_link(h, sa);
      senders.push_back(h);
    }

    if (!isolated) {
      const Prefix psrv = Prefix::host(srv_addr);
      for (NodeId h : senders) {
        const Prefix ph = Prefix::host(net.node(h).address);
        net.table(sa).add(ph, h);
        // The only configuration difference between segments is *routing*:
        // a bypassed segment's outbound path skips the (identically
        // configured) IDPS, which no host fingerprint can see.
        net.table(sa).add_from(h, psrv, bypassed ? sb : idps.node());
        net.table(sa).add_from(sb, ph, idps.node());
        net.table(sa).add_from(idps.node(), ph, h);
        net.table(sb).add(ph, sa);
      }
      net.table(sa).add_from(idps.node(), psrv, sb);
      net.table(sb).add(psrv, srv);
    }

    out.segment_senders.push_back(std::move(senders));
    out.segment_servers.push_back(srv);
    out.segment_idps.push_back(idps.node());

    out.invariants.push_back(Invariant::no_malicious_delivery(srv));
    out.expected_holds.push_back(!bypassed);
    out.invariants.push_back(Invariant::traversal(srv, "idps"));
    out.expected_holds.push_back(!bypassed);
  }
  return out;
}

}  // namespace vmn::scenarios
