#include "scenarios/random.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/rng.hpp"
#include "mbox/app_firewall.hpp"
#include "mbox/content_cache.hpp"
#include "mbox/firewall.hpp"
#include "mbox/gateway.hpp"
#include "mbox/idps.hpp"
#include "mbox/load_balancer.hpp"
#include "mbox/nat.hpp"
#include "mbox/proxy.hpp"
#include "mbox/scrubber.hpp"
#include "mbox/wan_optimizer.hpp"

namespace vmn::scenarios {

namespace {

/// The zoo. `chainable` marks types whose sim/symbolic semantics pass
/// unrelated traffic through (possibly rewritten), so they can sit inline
/// on a host-to-host service chain without blackholing it; the rest (NAT,
/// load balancer, proxy) drop traffic that does not concern them and are
/// reached via their implicit addresses instead.
struct BoxKind {
  const char* prefix;
  int weight;
  bool chainable;
};

constexpr BoxKind kZoo[] = {
    {"fw", 3, true},     {"idps", 2, true},  {"scrub", 1, true},
    {"gw", 1, true},     {"afw", 1, true},   {"wopt", 1, true},
    {"cache", 1, true},  {"nat", 1, false},  {"lb", 1, false},
    {"proxy", 1, false},
};

Address host_address(int i) {
  return Address::of(10, 0, static_cast<std::uint8_t>(i), 1);
}

/// A random prefix that relates to the host address plan: a specific host,
/// its /24, or the whole host range.
Prefix random_host_prefix(Rng& rng, int hosts) {
  const int h = static_cast<int>(rng.uniform(0, hosts - 1));
  switch (rng.uniform(0, 2)) {
    case 0: return Prefix::host(host_address(h));
    case 1: return Prefix(Address::of(10, 0, static_cast<std::uint8_t>(h), 0),
                          24);
    default: return Prefix(Address::of(10, 0, 0, 0), 16);
  }
}

struct Builder {
  const RandomSpecParams& params;
  Rng rng;
  io::Spec spec;
  net::Network& net;

  std::vector<NodeId> switches;
  std::vector<NodeId> hosts;
  std::vector<NodeId> boxes;
  std::vector<bool> box_chainable;
  std::vector<std::string> box_prefixes;  ///< distinct name prefixes placed
  /// Attachment switch index per host / box.
  std::vector<int> host_switch;
  std::vector<int> box_switch;
  /// box indices chained at (switch s, destination host d); addressed as
  /// chains[s * hosts + d].
  std::vector<std::vector<int>> chains;
  /// Next-hop node from switch s toward destination attached at switch t
  /// (BFS parent maps, one per attachment switch).
  std::vector<std::vector<int>> toward;  ///< toward[t][s] = next switch, -1=t

  explicit Builder(const RandomSpecParams& p)
      : params(p), rng(p.seed), net(spec.model.network()) {}

  void topology() {
    const int s_count = static_cast<int>(rng.uniform(1, params.max_switches));
    for (int i = 0; i < s_count; ++i) {
      switches.push_back(net.add_switch("s" + std::to_string(i)));
    }
    for (int i = 1; i < s_count; ++i) {
      net.add_link(switches[static_cast<std::size_t>(i)],
                   switches[static_cast<std::size_t>(rng.uniform(0, i - 1))]);
    }
    // An occasional redundant link (BFS routing stays loop-free).
    if (s_count > 2 && rng.chance(0.3)) {
      const int a = static_cast<int>(rng.uniform(0, s_count - 1));
      int b = static_cast<int>(rng.uniform(0, s_count - 1));
      if (a != b) {
        const auto& adj = net.neighbors(switches[static_cast<std::size_t>(a)]);
        if (std::find(adj.begin(), adj.end(),
                      switches[static_cast<std::size_t>(b)]) == adj.end()) {
          net.add_link(switches[static_cast<std::size_t>(a)],
                       switches[static_cast<std::size_t>(b)]);
        }
      }
    }

    const int h_count = static_cast<int>(
        rng.uniform(params.min_hosts, std::max(params.min_hosts,
                                               params.max_hosts)));
    for (int i = 0; i < h_count; ++i) {
      NodeId h = net.add_host("h" + std::to_string(i), host_address(i));
      const int at = static_cast<int>(rng.uniform(0, s_count - 1));
      net.add_link(h, switches[static_cast<std::size_t>(at)]);
      hosts.push_back(h);
      host_switch.push_back(at);
    }
  }

  void middleboxes() {
    int total_weight = 0;
    for (const BoxKind& k : kZoo) total_weight += k.weight;
    std::map<std::string, int> per_type_index;
    const int m_count =
        static_cast<int>(rng.uniform(1, std::max(1, params.max_middleboxes)));
    for (int i = 0; i < m_count; ++i) {
      int pick = static_cast<int>(rng.uniform(0, total_weight - 1));
      const BoxKind* kind = &kZoo[0];
      for (const BoxKind& k : kZoo) {
        if (pick < k.weight) {
          kind = &k;
          break;
        }
        pick -= k.weight;
      }
      const int idx = per_type_index[kind->prefix]++;
      const std::string name = kind->prefix + std::to_string(idx);
      add_box(kind->prefix, name, i);
      box_chainable.push_back(kind->chainable);
      if (std::find(box_prefixes.begin(), box_prefixes.end(), kind->prefix) ==
          box_prefixes.end()) {
        box_prefixes.emplace_back(kind->prefix);
      }
      const int at =
          static_cast<int>(rng.uniform(0, static_cast<int>(switches.size()) - 1));
      net.add_link(boxes.back(), switches[static_cast<std::size_t>(at)]);
      box_switch.push_back(at);
    }
  }

  void add_box(const std::string& prefix, const std::string& name, int i) {
    const int h_count = static_cast<int>(hosts.size());
    encode::NetworkModel& model = spec.model;
    if (prefix == "fw") {
      std::vector<mbox::AclEntry> acl;
      const int entries = static_cast<int>(rng.uniform(0, 3));
      for (int e = 0; e < entries; ++e) {
        acl.push_back(mbox::AclEntry{
            random_host_prefix(rng, h_count), random_host_prefix(rng, h_count),
            rng.chance(0.5) ? mbox::AclAction::allow : mbox::AclAction::deny});
      }
      boxes.push_back(model
                          .add_middlebox(std::make_unique<mbox::LearningFirewall>(
                              name, std::move(acl),
                              rng.chance(0.6) ? mbox::AclAction::allow
                                              : mbox::AclAction::deny))
                          .node());
    } else if (prefix == "idps") {
      boxes.push_back(
          model.add_middlebox(std::make_unique<mbox::Idps>(name, rng.chance(0.7)))
              .node());
    } else if (prefix == "scrub") {
      boxes.push_back(
          model.add_middlebox(std::make_unique<mbox::Scrubber>(name)).node());
    } else if (prefix == "gw") {
      boxes.push_back(model
                          .add_middlebox(std::make_unique<mbox::Gateway>(
                              name, rng.chance(0.3)
                                        ? mbox::FailureMode::fail_open
                                        : mbox::FailureMode::fail_closed))
                          .node());
    } else if (prefix == "afw") {
      std::vector<std::uint16_t> blocked;
      const int classes = static_cast<int>(rng.uniform(1, 2));
      for (int c = 0; c < classes; ++c) {
        blocked.push_back(static_cast<std::uint16_t>(rng.uniform(1, 4)));
      }
      boxes.push_back(model
                          .add_middlebox(std::make_unique<mbox::AppFirewall>(
                              name, std::move(blocked)))
                          .node());
    } else if (prefix == "wopt") {
      boxes.push_back(
          model.add_middlebox(std::make_unique<mbox::WanOptimizer>(name))
              .node());
    } else if (prefix == "cache") {
      std::vector<mbox::CacheAclEntry> acl;
      const int entries = static_cast<int>(rng.uniform(0, 2));
      for (int e = 0; e < entries; ++e) {
        acl.push_back(mbox::CacheAclEntry{
            random_host_prefix(rng, h_count),
            host_address(static_cast<int>(rng.uniform(0, h_count - 1))),
            rng.chance(0.7)});
      }
      boxes.push_back(model
                          .add_middlebox(std::make_unique<mbox::ContentCache>(
                              name, std::move(acl)))
                          .node());
    } else if (prefix == "nat") {
      const Prefix internal =
          rng.chance(0.5)
              ? Prefix(Address::of(10, 0, 0, 0), 16)
              : Prefix(Address::of(
                           10, 0,
                           static_cast<std::uint8_t>(rng.uniform(0, h_count - 1)),
                           0),
                       24);
      boxes.push_back(model
                          .add_middlebox(std::make_unique<mbox::Nat>(
                              name,
                              Address::of(172, 16, static_cast<std::uint8_t>(i),
                                          1),
                              internal))
                          .node());
    } else if (prefix == "lb") {
      std::vector<Address> backends;
      const int n = static_cast<int>(rng.uniform(1, std::min(2, h_count)));
      for (std::size_t b : rng.sample(static_cast<std::size_t>(h_count),
                                      static_cast<std::size_t>(n))) {
        backends.push_back(host_address(static_cast<int>(b)));
      }
      boxes.push_back(model
                          .add_middlebox(std::make_unique<mbox::LoadBalancer>(
                              name,
                              Address::of(172, 17, static_cast<std::uint8_t>(i),
                                          1),
                              std::move(backends)))
                          .node());
    } else {  // proxy
      boxes.push_back(model
                          .add_middlebox(std::make_unique<mbox::Proxy>(
                              name, Address::of(172, 18,
                                                static_cast<std::uint8_t>(i),
                                                1)))
                          .node());
    }
  }

  /// BFS parent map over the switch graph toward attachment switch `t`:
  /// toward[t][s] is the switch index one hop closer to t (-1 at t itself).
  void bfs_maps() {
    const int s_count = static_cast<int>(switches.size());
    toward.assign(static_cast<std::size_t>(s_count),
                  std::vector<int>(static_cast<std::size_t>(s_count), -1));
    for (int t = 0; t < s_count; ++t) {
      std::vector<int>& parent = toward[static_cast<std::size_t>(t)];
      std::vector<bool> seen(static_cast<std::size_t>(s_count), false);
      std::deque<int> queue{t};
      seen[static_cast<std::size_t>(t)] = true;
      while (!queue.empty()) {
        const int cur = queue.front();
        queue.pop_front();
        for (NodeId nb : net.neighbors(switches[static_cast<std::size_t>(cur)])) {
          if (net.kind(nb) != net::NodeKind::switch_node) continue;
          const int ni = switch_index(nb);
          if (seen[static_cast<std::size_t>(ni)]) continue;
          seen[static_cast<std::size_t>(ni)] = true;
          parent[static_cast<std::size_t>(ni)] = cur;
          queue.push_back(ni);
        }
      }
    }
  }

  int switch_index(NodeId sw) const {
    for (std::size_t i = 0; i < switches.size(); ++i) {
      if (switches[i] == sw) return static_cast<int>(i);
    }
    return -1;
  }

  /// The datapath next hop from switch `s` toward the edge node `owner`
  /// attached at switch `t` (the owner itself when s == t).
  NodeId base_next(int s, int t, NodeId owner) const {
    if (s == t) return owner;
    const int p = toward[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)];
    return switches[static_cast<std::size_t>(p)];
  }

  void routing() {
    const int s_count = static_cast<int>(switches.size());
    const int h_count = static_cast<int>(hosts.size());
    chains.assign(static_cast<std::size_t>(s_count * h_count), {});
    // Sample the per-(switch, destination) service chains first.
    for (int s = 0; s < s_count; ++s) {
      for (int d = 0; d < h_count; ++d) {
        std::vector<int>& chain = chains[static_cast<std::size_t>(s * h_count + d)];
        for (std::size_t b = 0; b < boxes.size(); ++b) {
          if (box_switch[b] == s && box_chainable[b] &&
              rng.chance(params.chain_probability)) {
            chain.push_back(static_cast<int>(b));
          }
        }
      }
    }
    // Host destination routes: BFS spine with the chain spliced in front
    // (plain rule into the chain head, in-port rules onward - the OneBoxNet
    // pattern every hand-written generator uses).
    for (int d = 0; d < h_count; ++d) {
      const Prefix pd = Prefix::host(host_address(d));
      const int t = host_switch[static_cast<std::size_t>(d)];
      for (int s = 0; s < s_count; ++s) {
        net::ForwardingTable& table = net.table(switches[static_cast<std::size_t>(s)]);
        const NodeId next = base_next(s, t, hosts[static_cast<std::size_t>(d)]);
        const std::vector<int>& chain =
            chains[static_cast<std::size_t>(s * h_count + d)];
        if (chain.empty()) {
          table.add(pd, next);
          continue;
        }
        table.add(pd, boxes[static_cast<std::size_t>(chain[0])], 10);
        for (std::size_t j = 0; j < chain.size(); ++j) {
          const NodeId hop = j + 1 < chain.size()
                                 ? boxes[static_cast<std::size_t>(chain[j + 1])]
                                 : next;
          table.add_from(boxes[static_cast<std::size_t>(chain[j])], pd, hop, 20);
        }
      }
    }
    // Implicit addresses (NAT external, LB VIP, proxy address) route toward
    // their owning box from everywhere; no chains on these paths.
    for (std::size_t b = 0; b < boxes.size(); ++b) {
      const mbox::Middlebox* box = spec.model.middlebox_at(boxes[b]);
      const int t = box_switch[b];
      for (Address a : box->implicit_addresses()) {
        if (net.host_by_address(a)) continue;  // backend lists name hosts
        const Prefix pa = Prefix::host(a);
        for (int s = 0; s < s_count; ++s) {
          net.table(switches[static_cast<std::size_t>(s)])
              .add(pa, base_next(s, t, boxes[b]));
        }
      }
    }
  }

  void scenarios() {
    const int h_count = static_cast<int>(hosts.size());
    const int want = static_cast<int>(rng.uniform(0, params.max_scenarios));
    // (switch, dest) pairs with a non-empty chain, for misroute overrides.
    std::vector<std::pair<int, int>> chained;
    for (int s = 0; s < static_cast<int>(switches.size()); ++s) {
      for (int d = 0; d < h_count; ++d) {
        if (!chains[static_cast<std::size_t>(s * h_count + d)].empty()) {
          chained.emplace_back(s, d);
        }
      }
    }
    for (int k = 0; k < want; ++k) {
      std::vector<NodeId> failed;
      const bool node_failure = !boxes.empty() && rng.chance(0.8);
      if (node_failure) {
        const int budget =
            std::min(params.max_failures, static_cast<int>(boxes.size()));
        if (budget >= 1) {
          const int n = static_cast<int>(rng.uniform(1, budget));
          for (std::size_t b :
               rng.sample(boxes.size(), static_cast<std::size_t>(n))) {
            failed.push_back(boxes[b]);
          }
        }
      }
      const bool misroute =
          !chained.empty() &&
          (rng.chance(params.misroute_probability) || failed.empty());
      if (failed.empty() && !misroute) continue;  // would duplicate base
      const ScenarioId sid = net.add_failure_scenario(
          "f" + std::to_string(k), std::move(failed));
      if (misroute) {
        const auto [s, d] =
            chained[static_cast<std::size_t>(rng.uniform(
                0, static_cast<int>(chained.size()) - 1))];
        // Bypass the whole chain at a higher priority than its entry rule.
        net.table(switches[static_cast<std::size_t>(s)], sid)
            .add(Prefix::host(host_address(d)),
                 base_next(s, host_switch[static_cast<std::size_t>(d)],
                           hosts[static_cast<std::size_t>(d)]),
                 30);
      }
    }
  }

  void invariants() {
    const int h_count = static_cast<int>(hosts.size());
    const int want = static_cast<int>(
        rng.uniform(params.min_invariants, std::max(params.min_invariants,
                                                    params.max_invariants)));
    for (int i = 0; i < want; ++i) {
      const int d = static_cast<int>(rng.uniform(0, h_count - 1));
      int s = static_cast<int>(rng.uniform(0, h_count - 1));
      if (s == d) s = (s + 1) % h_count;
      const NodeId dn = hosts[static_cast<std::size_t>(d)];
      const NodeId sn = hosts[static_cast<std::size_t>(s)];
      encode::Invariant inv;
      switch (rng.uniform(0, 6)) {
        case 0: inv = encode::Invariant::node_isolation(dn, sn); break;
        case 1: inv = encode::Invariant::flow_isolation(dn, sn); break;
        case 2: inv = encode::Invariant::data_isolation(dn, sn); break;
        case 3: inv = encode::Invariant::no_malicious_delivery(dn); break;
        case 4:
          inv = encode::Invariant::traversal(dn, random_box_prefix());
          break;
        case 5:
          inv = encode::Invariant::traversal_from(dn, sn, random_box_prefix());
          break;
        default: inv = encode::Invariant::reachable(dn, sn); break;
      }
      spec.invariants.push_back(inv);
      spec.expectations.emplace_back();  // differential testing: no oracle
    }
  }

  std::string random_box_prefix() {
    return box_prefixes[static_cast<std::size_t>(
        rng.uniform(0, static_cast<int>(box_prefixes.size()) - 1))];
  }
};

}  // namespace

RandomSpec make_random_spec(const RandomSpecParams& params) {
  Builder b(params);
  b.topology();
  b.middleboxes();
  b.bfs_maps();
  b.routing();
  b.scenarios();
  b.invariants();
  RandomSpec out;
  out.text = io::write_spec_string(b.spec);
  out.spec = std::move(b.spec);
  out.seed = params.seed;
  return out;
}

int derived_max_failures(const encode::NetworkModel& model) {
  std::size_t worst = 0;
  for (const net::FailureScenario& sc : model.network().scenarios()) {
    worst = std::max(worst, sc.failed_nodes.size());
  }
  return static_cast<int>(worst);
}

}  // namespace vmn::scenarios
