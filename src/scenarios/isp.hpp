// ISP with intrusion detection and a scrubbing box (paper, section 5.3.3,
// Fig 9a; modeled after the SWITCHlan backbone).
//
// Backbone switches bb_0 .. bb_{P-1} form a line. Each peering point i hosts
// the Fig 9(a) pipeline: peer_i -> IDS_i -> FW_i -> backbone. Subnets cycle
// through public/private/quarantined policies (section 5.3.1) enforced by
// every peering firewall; a single scrubbing box (SB) is shared by all
// peering points ("this setup is preferred to installing a separate
// scrubbing box at each peering point because of the high cost").
//
// When an IDS detects an attack on a destination prefix it reroutes that
// prefix's traffic to the scrubber. The reroute is modeled as an extra
// routing scenario (no failed nodes): in the *correct* configuration the
// scrubbed traffic re-enters the network through peering point 0's stateful
// firewall; the §5.3.3 *misconfiguration* sends it straight to the subnet,
// bypassing every firewall - violating the subnet's isolation.
#pragma once

#include "encode/invariant.hpp"
#include "encode/model.hpp"
#include "scenarios/batch.hpp"
#include "scenarios/enterprise.hpp"  // SubnetKind

namespace vmn::scenarios {

struct IspParams {
  int peering_points = 5;
  int subnets = 6;
  int hosts_per_subnet = 1;
  /// Install the attack-reroute scenario (needs >= 2 peering points).
  bool with_scrub_reroute = true;
  /// Misconfigure the reroute to bypass the firewalls (section 5.3.3).
  bool scrub_bypasses_firewalls = false;
};

struct Isp {
  encode::NetworkModel model;
  std::vector<NodeId> peers;                     ///< per peering point
  std::vector<std::vector<NodeId>> subnet_hosts;
  std::vector<SubnetKind> subnet_kind;
  /// The routing scenario in which subnet 1's prefix is under attack and
  /// rerouted through the scrubber (invalid when not installed).
  ScenarioId attack_scenario;

  /// Per-subnet policy invariants against peer 0 (all hold when correctly
  /// configured).
  [[nodiscard]] std::vector<encode::Invariant> invariants() const;
  /// The invariant the scrub-reroute misconfiguration breaks: subnet 1
  /// (private) stays flow-isolated from peer 1.
  [[nodiscard]] encode::Invariant attacked_subnet_isolation() const;

  /// Whether the attack-reroute scenario was installed, and whether it was
  /// installed with the firewall-bypassing misconfiguration (recorded by
  /// make_isp for batch expectations).
  bool has_attack_scenario = false;
  bool scrub_misconfigured = false;

  /// The uniform batch view (scenarios/batch.hpp): the per-subnet policy
  /// invariants plus, when the reroute is installed, the attacked subnet's
  /// isolation (violated exactly when the reroute bypasses the firewalls).
  [[nodiscard]] Batch batch() const;
};

[[nodiscard]] Isp make_isp(const IspParams& params);

}  // namespace vmn::scenarios
