// Multi-tenant datacenter with per-server virtual-switch firewalls
// (paper, section 5.3.2; the Amazon EC2 Security Groups model).
//
// Every physical server runs a virtual switch acting as a stateful
// firewall that defaults to deny. Tenants organize VMs into two security
// groups:
//   - public VMs accept connections from anyone;
//   - private VMs accept connections only from their own tenant's VMs
//     (and, via hole punching, responses to flows they initiated).
//
// Tenant t's VMs live in 10.<t>.0/24 (5 public then 5 private by default),
// spread across servers round-robin, so each vswitch firewall polices a mix
// of tenants - exactly the security-group-driven rule layout the paper
// describes (two rules per public group, three per private group, expressed
// here as prefix entries).
#pragma once

#include "encode/invariant.hpp"
#include "encode/model.hpp"
#include "scenarios/batch.hpp"

namespace vmn::scenarios {

struct MultiTenantParams {
  int tenants = 4;
  int servers = 4;
  int public_vms_per_tenant = 5;
  int private_vms_per_tenant = 5;
};

struct MultiTenant {
  encode::NetworkModel model;
  std::vector<std::vector<NodeId>> public_vms;   ///< per tenant
  std::vector<std::vector<NodeId>> private_vms;  ///< per tenant

  /// The three Fig 8 invariant families between tenants 0 and 1:
  ///   Priv-Priv: tenant B private VM is flow-isolated from tenant A private;
  ///   Pub-Priv:  tenant B private VM is flow-isolated from tenant A public;
  ///   Priv-Pub:  tenant A private VM can reach tenant B public VM.
  [[nodiscard]] encode::Invariant priv_priv() const;
  [[nodiscard]] encode::Invariant pub_priv() const;
  [[nodiscard]] encode::Invariant priv_pub() const;
  /// All three, with expected outcomes (all hold for the correct config).
  [[nodiscard]] std::vector<encode::Invariant> invariants() const;

  /// The uniform batch view (scenarios/batch.hpp).
  [[nodiscard]] Batch batch() const;
};

[[nodiscard]] MultiTenant make_multitenant(const MultiTenantParams& params);

}  // namespace vmn::scenarios
