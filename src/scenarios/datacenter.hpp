// Datacenter with middlebox service chains (paper, section 5.1/5.2, Fig 1).
//
// Per policy group: one rack (ToR switch + client hosts) and, when storage
// services are modeled, a server rack holding a private and a public data
// server. An aggregation layer hosts the middlebox stack: redundant
// stateful firewalls (fw-0 primary / fw-1 backup), redundant IDPSes
// (idps-0 / idps-1), a load balancer fronting the public servers, and -
// in data-isolation mode - a content cache on the storage path.
//
// Service chains (via in-port forwarding rules at the aggregation switch):
//   client -> client :           ToR -> FW -> IDPS -> ToR
//   client -> server (request):  ToR -> cache -> FW -> IDPS -> server rack
//   server -> client (response): rack -> cache -> IDPS -> ToR   (cached!)
//
// Failure scenarios reroute through the backups (fw-0-down, idps-0-down).
// Misconfiguration injectors reproduce the three §5.1 error classes plus
// the §5.2 cache ACL deletions.
#pragma once

#include "core/rng.hpp"
#include "encode/invariant.hpp"
#include "encode/model.hpp"
#include "mbox/content_cache.hpp"
#include "mbox/firewall.hpp"
#include "scenarios/batch.hpp"

namespace vmn::scenarios {

struct DatacenterParams {
  int policy_groups = 4;
  int clients_per_group = 2;
  /// Adds per-group private/public servers, the cache and the LB (§5.2).
  bool with_storage = false;
  /// Adds backup middleboxes and the failure scenarios using them.
  bool redundancy = true;
};

enum class DcMisconfig : std::uint8_t {
  none,
  rules,       ///< §5.1: deny rules deleted from both firewalls
  redundancy,  ///< §5.1: deny rules deleted from the backup firewall only
  traversal,   ///< §5.1: failover routing bypasses the backup IDPS
  cache_acl,   ///< §5.2: deny entries deleted from the cache
};

struct Datacenter {
  encode::NetworkModel model;
  std::vector<std::vector<NodeId>> group_clients;
  std::vector<NodeId> private_servers;  ///< per group (with_storage)
  std::vector<NodeId> public_servers;   ///< per group (with_storage)

  mbox::LearningFirewall* fw_primary = nullptr;
  mbox::LearningFirewall* fw_backup = nullptr;
  mbox::ContentCache* cache = nullptr;
  ScenarioId fw_down;    ///< scenario: primary firewall failed
  ScenarioId idps_down;  ///< scenario: primary IDPS failed

  /// Groups affected by the last injection, whatever the kind (rules,
  /// redundancy, traversal or cache_acl breakage).
  std::vector<std::pair<int, int>> broken_pairs;  ///< (src group, dst group)
  /// The subset of broken_pairs whose node-isolation invariant is violated
  /// with a zero failure budget: only DcMisconfig::rules lands here
  /// (redundancy needs max_failures >= 1 to manifest; traversal and
  /// cache_acl break other invariant families).
  std::vector<std::pair<int, int>> broken_isolation_pairs;

  /// One isolation invariant per policy group g: a client of group g+1
  /// never receives packets from group g (§5.1's "hosts can only
  /// communicate with other hosts in the same group", one invariant per
  /// equivalence class).
  [[nodiscard]] std::vector<encode::Invariant> isolation_invariants() const;
  /// One traversal invariant per group: all packets delivered to a client
  /// of g traversed an IDPS.
  [[nodiscard]] std::vector<encode::Invariant> traversal_invariants() const;
  /// One data-isolation invariant per group (with_storage): a client of
  /// g+1 never obtains data originating at group g's private server.
  [[nodiscard]] std::vector<encode::Invariant> data_isolation_invariants()
      const;

  /// Whether the (src group -> dst group) direction was broken.
  [[nodiscard]] bool pair_broken(int src_group, int dst_group) const;

  /// The uniform batch view (scenarios/batch.hpp): the §5.1 isolation
  /// invariants, with expectations tracking any injected rule breakage.
  [[nodiscard]] Batch batch() const;
};

[[nodiscard]] Datacenter make_datacenter(const DatacenterParams& params);

/// Applies a misconfiguration class; `strength` is how many rules to delete.
/// Records the affected group pairs in `dc.broken_pairs`.
void inject_misconfig(Datacenter& dc, DcMisconfig kind, Rng& rng,
                      int strength = 1);

}  // namespace vmn::scenarios
