#include "scenarios/isp.hpp"

#include "mbox/firewall.hpp"
#include "mbox/idps.hpp"
#include "mbox/scrubber.hpp"

namespace vmn::scenarios {

using encode::Invariant;
using mbox::AclAction;
using mbox::AclEntry;

namespace {

Prefix subnet_prefix(int s) {
  return Prefix(Address::of(10, static_cast<std::uint8_t>(s >> 8),
                            static_cast<std::uint8_t>(s & 0xff), 0),
                24);
}

Prefix peer_prefix(int i) {
  return Prefix(Address::of(172, 16, static_cast<std::uint8_t>(i), 0), 24);
}

Address peer_address(int i) {
  return Address::of(172, 16, static_cast<std::uint8_t>(i), 1);
}

const Prefix internal{Address::of(10, 0, 0, 0), 8};
const Prefix external{Address::of(172, 16, 0, 0), 12};

}  // namespace

Isp make_isp(const IspParams& params) {
  if (params.peering_points < 1 || params.subnets < 2) {
    throw ModelError("ISP scenario needs >= 1 peering point and >= 2 subnets");
  }
  Isp out;
  net::Network& net = out.model.network();
  const int P = params.peering_points;

  // Shared firewall policy, per subnet kind (section 5.3.1 semantics).
  std::vector<AclEntry> acl;
  for (int s = 0; s < params.subnets; ++s) {
    switch (subnet_kind_of(s)) {
      case SubnetKind::public_net:
        acl.push_back(AclEntry{external, subnet_prefix(s), AclAction::allow});
        acl.push_back(AclEntry{subnet_prefix(s), external, AclAction::allow});
        break;
      case SubnetKind::private_net:
        acl.push_back(AclEntry{subnet_prefix(s), external, AclAction::allow});
        break;
      case SubnetKind::quarantined:
        break;
    }
  }

  // Backbone line.
  std::vector<NodeId> bb;
  for (int i = 0; i < P; ++i) {
    bb.push_back(net.add_switch("bb" + std::to_string(i)));
    if (i > 0) net.add_link(bb[static_cast<std::size_t>(i)], bb[i - 1u]);
  }

  // Peering points: peer_i and ids_i on sw_pp_i; fw_i on sw_fw_i.
  std::vector<NodeId> sw_pp(static_cast<std::size_t>(P));
  std::vector<NodeId> sw_fw(static_cast<std::size_t>(P));
  std::vector<NodeId> ids(static_cast<std::size_t>(P));
  std::vector<NodeId> fw(static_cast<std::size_t>(P));
  for (int i = 0; i < P; ++i) {
    const auto si = static_cast<std::size_t>(i);
    sw_pp[si] = net.add_switch("sw-pp" + std::to_string(i));
    sw_fw[si] = net.add_switch("sw-fw" + std::to_string(i));
    NodeId peer = net.add_host("peer" + std::to_string(i), peer_address(i));
    out.peers.push_back(peer);
    auto& ids_box = out.model.add_middlebox(
        std::make_unique<mbox::Idps>("ids" + std::to_string(i)));
    auto& fw_box = out.model.add_middlebox(std::make_unique<mbox::LearningFirewall>(
        "fw" + std::to_string(i), acl, AclAction::deny));
    ids[si] = ids_box.node();
    fw[si] = fw_box.node();
    net.add_link(peer, sw_pp[si]);
    net.add_link(ids[si], sw_pp[si]);
    net.add_link(fw[si], sw_fw[si]);
    net.add_link(sw_pp[si], sw_fw[si]);
    net.add_link(sw_fw[si], bb[si]);

    // Inbound: peer -> IDS -> FW -> backbone.
    net.table(sw_pp[si]).add_from(peer, internal, ids[si]);
    net.table(sw_pp[si]).add_from(ids[si], internal, sw_fw[si]);
    net.table(sw_pp[si]).add_from(sw_fw[si], peer_prefix(i), peer);
    net.table(sw_fw[si]).add_from(sw_pp[si], internal, fw[si]);
    net.table(sw_fw[si]).add_from(fw[si], internal, bb[si]);
    // Outbound: backbone -> FW -> peer (stateful firewalls must see both
    // directions for hole punching).
    net.table(sw_fw[si]).add_from(bb[si], peer_prefix(i), fw[si]);
    net.table(sw_fw[si]).add_from(fw[si], peer_prefix(i), sw_pp[si]);
  }

  // Subnets, round-robin across backbone switches.
  std::vector<NodeId> sw_net(static_cast<std::size_t>(params.subnets));
  for (int s = 0; s < params.subnets; ++s) {
    const auto ss = static_cast<std::size_t>(s);
    out.subnet_kind.push_back(subnet_kind_of(s));
    sw_net[ss] = net.add_switch("sw-net" + std::to_string(s));
    net.add_link(sw_net[ss], bb[static_cast<std::size_t>(s % P)]);
    std::vector<NodeId> hosts;
    for (int h = 0; h < params.hosts_per_subnet; ++h) {
      const Address addr(subnet_prefix(s).base().bits() +
                         static_cast<std::uint32_t>(h) + 1);
      NodeId host = net.add_host(
          "n" + std::to_string(s) + "-" + std::to_string(h), addr);
      net.add_link(host, sw_net[ss]);
      net.table(sw_net[ss]).add(Prefix::host(addr), host);
      out.model.set_policy_class(
          host, PolicyClassId{static_cast<std::uint32_t>(s % 3)});
      hosts.push_back(host);
    }
    net.table(sw_net[ss]).add(Prefix::any(),
                              bb[static_cast<std::size_t>(s % P)]);
    out.subnet_hosts.push_back(std::move(hosts));
  }

  // Backbone line routing.
  auto toward = [&](int at, int target) {
    return target > at ? bb[static_cast<std::size_t>(at + 1)]
                       : bb[static_cast<std::size_t>(at - 1)];
  };
  for (int i = 0; i < P; ++i) {
    for (int s = 0; s < params.subnets; ++s) {
      const int home = s % P;
      net.table(bb[static_cast<std::size_t>(i)])
          .add(subnet_prefix(s), home == i ? sw_net[static_cast<std::size_t>(s)]
                                           : toward(i, home));
    }
    for (int j = 0; j < P; ++j) {
      net.table(bb[static_cast<std::size_t>(i)])
          .add(peer_prefix(j),
               j == i ? sw_fw[static_cast<std::size_t>(i)] : toward(i, j));
    }
  }

  // Scrubbing box, attached near peering point 1 (or 0 when P == 1).
  const int a = P >= 2 ? 1 : 0;
  const auto sa = static_cast<std::size_t>(a);
  NodeId sw_sb = net.add_switch("sw-sb");
  auto& sb = out.model.add_middlebox(std::make_unique<mbox::Scrubber>("sb"));
  net.add_link(sb.node(), sw_sb);
  net.add_link(sw_sb, bb[sa]);
  net.table(sw_sb).add_from(bb[sa], internal, sb.node());
  net.table(sw_sb).add_from(sb.node(), internal, bb[sa]);

  // Attack-reroute scenario: the IDS at peering `a` detects an attack on
  // subnet 1's prefix and diverts it to the scrubber before the firewall.
  if (params.with_scrub_reroute && P >= 2) {
    out.has_attack_scenario = true;
    out.scrub_misconfigured = params.scrub_bypasses_firewalls;
    const Prefix attacked = subnet_prefix(1);
    out.attack_scenario = net.add_failure_scenario("scrub-reroute", {});

    // Divert: post-IDS traffic for the attacked prefix skips fw_a...
    net.table(sw_fw[sa], out.attack_scenario)
        .add_from(sw_pp[sa], attacked, bb[sa], /*priority=*/9);
    // ... and bb_a hands it to the scrubber.
    net.table(bb[sa], out.attack_scenario)
        .add_from(sw_fw[sa], attacked, sw_sb, /*priority=*/9);

    if (params.scrub_bypasses_firewalls) {
      // Misconfiguration: scrubbed traffic goes straight to the subnet.
      const int home = 1 % P;
      net.table(bb[sa], out.attack_scenario)
          .add_from(sw_sb, attacked,
                    home == a ? sw_net[1] : toward(a, home), /*priority=*/9);
      if (home != a) {
        // No further special-casing needed: downstream backbone switches
        // already route the attacked prefix to its home subnet.
      }
    } else {
      // Correct configuration: scrubbed traffic re-enters through peering
      // point 0's firewall, then follows normal routing to the subnet.
      net.table(bb[sa], out.attack_scenario)
          .add_from(sw_sb, attacked, toward(a, 0), /*priority=*/9);
      net.table(bb[0], out.attack_scenario)
          .add_from(bb[1], attacked, sw_fw[0], /*priority=*/9);
      net.table(sw_fw[0], out.attack_scenario)
          .add_from(bb[0], attacked, fw[0], /*priority=*/9);
      // fw_0's output follows the base rule (from fw_0, internal -> bb_0);
      // at bb_0 the packet arrives from sw_fw0, which the divert rule above
      // does not match, so it proceeds to the subnet normally.
    }
  }

  return out;
}

std::vector<Invariant> Isp::invariants() const {
  std::vector<Invariant> out;
  for (std::size_t s = 0; s < subnet_hosts.size(); ++s) {
    NodeId h = subnet_hosts[s].front();
    switch (subnet_kind[s]) {
      case SubnetKind::public_net:
        out.push_back(Invariant::reachable(h, peers.front()));
        break;
      case SubnetKind::private_net:
        out.push_back(Invariant::flow_isolation(h, peers.front()));
        break;
      case SubnetKind::quarantined:
        out.push_back(Invariant::node_isolation(h, peers.front()));
        break;
    }
  }
  return out;
}

Invariant Isp::attacked_subnet_isolation() const {
  const NodeId peer = peers.size() > 1 ? peers[1] : peers[0];
  return Invariant::flow_isolation(subnet_hosts[1].front(), peer);
}

Batch Isp::batch() const {
  Batch out;
  out.name = "isp";
  out.invariants = invariants();
  out.expected_holds.assign(out.invariants.size(), true);
  if (has_attack_scenario) {
    out.invariants.push_back(attacked_subnet_isolation());
    out.expected_holds.push_back(!scrub_misconfigured);
  }
  return out;
}

}  // namespace vmn::scenarios
