#include "scenarios/enterprise.hpp"

#include "mbox/firewall.hpp"
#include "mbox/gateway.hpp"

namespace vmn::scenarios {

using encode::Invariant;
using mbox::AclAction;
using mbox::AclEntry;

Batch Enterprise::batch() const {
  return Batch{"enterprise", invariants, expected_holds};
}

SubnetKind subnet_kind_of(int index) {
  switch (index % 3) {
    case 0:
      return SubnetKind::public_net;
    case 1:
      return SubnetKind::private_net;
    default:
      return SubnetKind::quarantined;
  }
}

Enterprise make_enterprise(const EnterpriseParams& params) {
  Enterprise out;
  net::Network& net = out.model.network();

  const Prefix internal(Address::of(10, 0, 0, 0), 8);
  const Prefix external(Address::of(172, 16, 0, 0), 12);
  out.internet = net.add_host("internet", Address::of(172, 16, 0, 1));

  // Firewall configuration is assembled per subnet below.
  std::vector<AclEntry> acl;

  NodeId sw_out = net.add_switch("sw-out");
  NodeId sw_in = net.add_switch("sw-in");
  net.add_link(out.internet, sw_out);
  net.add_link(sw_out, sw_in);

  auto& fw = out.model.add_middlebox(std::make_unique<mbox::LearningFirewall>(
      "fw", std::vector<AclEntry>{}, AclAction::deny));
  auto& gw =
      out.model.add_middlebox(std::make_unique<mbox::Gateway>("gw"));
  net.add_link(fw.node(), sw_out);
  net.add_link(gw.node(), sw_in);

  for (int s = 0; s < params.subnets; ++s) {
    const SubnetKind kind = subnet_kind_of(s);
    out.subnet_kind.push_back(kind);
    const Prefix subnet(
        Address::of(10, static_cast<std::uint8_t>(s >> 8),
                    static_cast<std::uint8_t>(s & 0xff), 0),
        24);
    NodeId sw = net.add_switch("sw-net" + std::to_string(s));
    net.add_link(sw, sw_in);

    std::vector<NodeId> hosts;
    for (int h = 0; h < params.hosts_per_subnet; ++h) {
      const Address addr(subnet.base().bits() + static_cast<std::uint32_t>(h) +
                         1);
      NodeId host = net.add_host(
          "h" + std::to_string(s) + "-" + std::to_string(h), addr);
      net.add_link(host, sw);
      net.table(sw).add(Prefix::host(addr), host);
      out.model.set_policy_class(host,
                                 PolicyClassId{static_cast<std::uint32_t>(
                                     static_cast<int>(kind))});
      hosts.push_back(host);
    }
    net.table(sw).add(Prefix::any(), sw_in);
    out.subnet_hosts.push_back(std::move(hosts));

    // Firewall policy per class (allow entries; default deny).
    switch (kind) {
      case SubnetKind::public_net:
        acl.push_back(AclEntry{external, subnet, AclAction::allow});
        acl.push_back(AclEntry{subnet, external, AclAction::allow});
        break;
      case SubnetKind::private_net:
        acl.push_back(AclEntry{subnet, external, AclAction::allow});
        break;
      case SubnetKind::quarantined:
        break;  // no entries: fully isolated by the default deny
    }

    // Inner switch: gateway hands subnet-bound traffic to the subnet switch.
    net.table(sw_in).add_from(gw.node(), subnet, sw);
  }

  fw.replace_acl(std::move(acl));

  // Outer switch: internet traffic enters through the firewall; firewall
  // output continues inward (internal destinations) or outward (external).
  net.table(sw_out).add_from(out.internet, internal, fw.node());
  net.table(sw_out).add_from(fw.node(), internal, sw_in);
  net.table(sw_out).add_from(fw.node(), external, out.internet);
  net.table(sw_out).add_from(sw_in, external, fw.node());

  // Inner switch: every flow crosses the gateway (Fig 6 pipeline): inbound
  // post-firewall traffic, outbound traffic and inter-subnet traffic all go
  // to the gateway first; gateway-emitted packets continue to the subnet
  // switches (in-port rules above) or toward the firewall.
  net.table(sw_in).add(internal, gw.node());
  net.table(sw_in).add(external, gw.node());
  net.table(sw_in).add_from(gw.node(), external, sw_out);

  // Invariants: one per subnet, expressing its class's policy; the
  // configuration is correct so all are expected to hold.
  for (int s = 0; s < params.subnets; ++s) {
    NodeId h = out.subnet_hosts[static_cast<std::size_t>(s)].front();
    switch (out.subnet_kind[static_cast<std::size_t>(s)]) {
      case SubnetKind::public_net:
        // Reachable from outside (positive invariant: sat = holds).
        out.invariants.push_back(Invariant::reachable(h, out.internet));
        out.expected_holds.push_back(true);
        break;
      case SubnetKind::private_net:
        out.invariants.push_back(Invariant::flow_isolation(h, out.internet));
        out.expected_holds.push_back(true);
        break;
      case SubnetKind::quarantined:
        out.invariants.push_back(Invariant::node_isolation(h, out.internet));
        out.expected_holds.push_back(true);
        break;
    }
  }
  return out;
}

}  // namespace vmn::scenarios
