#include "scenarios/datacenter.hpp"

#include "mbox/idps.hpp"
#include "mbox/load_balancer.hpp"

namespace vmn::scenarios {

using encode::Invariant;
using mbox::AclAction;
using mbox::AclEntry;
using mbox::CacheAclEntry;

namespace {

// Clients of group g live in 10.<g>.0/24; all servers live in the dedicated
// 10.200.0.0/15 block (private in 10.200/16, public in 10.201/16) so that
// "server-bound" is expressible as a single prefix in forwarding rules.
Prefix group_prefix(int g) {
  return Prefix(Address::of(10, static_cast<std::uint8_t>(g >> 8),
                            static_cast<std::uint8_t>(g & 0xff), 0),
                24);
}

Address client_address(int g, int i) {
  return Address(group_prefix(g).base().bits() + static_cast<std::uint32_t>(i) +
                 1);
}

Address private_server_address(int g) {
  return Address::of(10, 200, static_cast<std::uint8_t>(g >> 8),
                     static_cast<std::uint8_t>(g & 0xff));
}

Address public_server_address(int g) {
  return Address::of(10, 201, static_cast<std::uint8_t>(g >> 8),
                     static_cast<std::uint8_t>(g & 0xff));
}

Prefix all_servers_prefix() {
  return Prefix(Address::of(10, 200, 0, 0), 15);
}

}  // namespace

Datacenter make_datacenter(const DatacenterParams& params) {
  Datacenter out;
  net::Network& net = out.model.network();
  const int groups = params.policy_groups;

  NodeId agg = net.add_switch("agg");

  // -- middlebox stack -----------------------------------------------------
  // Firewall policy: deny cross-group traffic pairwise, then allow all
  // (the §5.1 configuration: rules that *prevent* inter-group traffic).
  std::vector<AclEntry> deny_rules;
  if (params.with_storage) {
    // Public servers accept from anyone: allow entries precede the denies.
    for (int g = 0; g < groups; ++g) {
      deny_rules.push_back(AclEntry{Prefix::any(),
                                    Prefix::host(public_server_address(g)),
                                    AclAction::allow});
      deny_rules.push_back(AclEntry{Prefix::host(public_server_address(g)),
                                    Prefix::any(), AclAction::allow});
    }
  }
  for (int a = 0; a < groups; ++a) {
    for (int b = 0; b < groups; ++b) {
      if (a == b) continue;
      deny_rules.push_back(
          AclEntry{group_prefix(a), group_prefix(b), AclAction::deny});
      if (params.with_storage) {
        // Cross-group access to private servers is denied in both
        // directions: requests in, data out.
        deny_rules.push_back(AclEntry{group_prefix(a),
                                      Prefix::host(private_server_address(b)),
                                      AclAction::deny});
        deny_rules.push_back(AclEntry{Prefix::host(private_server_address(b)),
                                      group_prefix(a), AclAction::deny});
      }
    }
  }

  out.fw_primary = &out.model.add_middlebox(
      std::make_unique<mbox::LearningFirewall>("fw-0", deny_rules,
                                               AclAction::allow));
  auto& idps0 = out.model.add_middlebox(std::make_unique<mbox::Idps>("idps-0"));
  net.add_link(out.fw_primary->node(), agg);
  net.add_link(idps0.node(), agg);

  mbox::Idps* idps1 = nullptr;
  if (params.redundancy) {
    out.fw_backup = &out.model.add_middlebox(
        std::make_unique<mbox::LearningFirewall>("fw-1", deny_rules,
                                                 AclAction::allow));
    idps1 = &out.model.add_middlebox(std::make_unique<mbox::Idps>("idps-1"));
    net.add_link(out.fw_backup->node(), agg);
    net.add_link(idps1->node(), agg);
  }

  // -- racks ---------------------------------------------------------------
  std::vector<NodeId> client_tors;
  std::vector<NodeId> server_tors;
  for (int g = 0; g < groups; ++g) {
    NodeId tor = net.add_switch("tor" + std::to_string(g));
    net.add_link(tor, agg);
    client_tors.push_back(tor);
    std::vector<NodeId> clients;
    for (int i = 0; i < params.clients_per_group; ++i) {
      const Address a = client_address(g, i);
      NodeId h = net.add_host(
          "c" + std::to_string(g) + "-" + std::to_string(i), a);
      net.add_link(h, tor);
      // Local delivery only for traffic returning from the aggregation
      // layer: same-rack traffic hairpins through the service chain too.
      net.table(tor).add_from(agg, Prefix::host(a), h);
      out.model.set_policy_class(h, PolicyClassId{static_cast<std::uint32_t>(g)});
      clients.push_back(h);
    }
    net.table(tor).add(Prefix::any(), agg);
    out.group_clients.push_back(std::move(clients));

    if (params.with_storage) {
      NodeId stor = net.add_switch("stor" + std::to_string(g));
      net.add_link(stor, agg);
      server_tors.push_back(stor);
      NodeId priv = net.add_host("srv-priv" + std::to_string(g),
                                 private_server_address(g));
      NodeId pub = net.add_host("srv-pub" + std::to_string(g),
                                public_server_address(g));
      net.add_link(priv, stor);
      net.add_link(pub, stor);
      net.table(stor).add_from(agg, Prefix::host(private_server_address(g)),
                               priv);
      net.table(stor).add_from(agg, Prefix::host(public_server_address(g)),
                               pub);
      net.table(stor).add(Prefix::any(), agg);
      out.model.set_policy_class(priv,
                                 PolicyClassId{static_cast<std::uint32_t>(g)});
      out.model.set_policy_class(pub,
                                 PolicyClassId{static_cast<std::uint32_t>(g)});
      out.private_servers.push_back(priv);
      out.public_servers.push_back(pub);
    }
  }

  // -- storage-path middleboxes ----------------------------------------------
  std::vector<Address> all_server_addrs;
  if (params.with_storage) {
    // Cache policy: group g's private data only to group g (deny entries for
    // every other group), public data unrestricted (default allow).
    std::vector<CacheAclEntry> cache_acl;
    for (int g = 0; g < groups; ++g) {
      for (int other = 0; other < groups; ++other) {
        if (other == g) continue;
        cache_acl.push_back(CacheAclEntry{group_prefix(other),
                                          private_server_address(g), true});
      }
    }
    out.cache = &out.model.add_middlebox(
        std::make_unique<mbox::ContentCache>("cache", cache_acl));
    net.add_link(out.cache->node(), agg);

    std::vector<Address> backends;
    for (int g = 0; g < groups; ++g) {
      backends.push_back(public_server_address(g));
      all_server_addrs.push_back(private_server_address(g));
      all_server_addrs.push_back(public_server_address(g));
    }
    auto& lb = out.model.add_middlebox(std::make_unique<mbox::LoadBalancer>(
        "lb", Address::of(10, 255, 0, 1), backends));
    net.add_link(lb.node(), agg);
    net.table(agg).add_from(out.fw_primary->node(),
                            Prefix::host(Address::of(10, 255, 0, 1)),
                            lb.node());
    net.table(agg).add_from(lb.node(), Prefix(Address::of(10, 0, 0, 0), 8),
                            idps0.node());
  }

  // -- aggregation switch: the service chains --------------------------------
  // Base chain for client traffic: ToR -> fw-0 -> idps-0 -> target rack.
  net.table(agg).add(Prefix::any(), out.fw_primary->node());
  net.table(agg).add_from(out.fw_primary->node(),
                          Prefix(Address::of(10, 0, 0, 0), 8), idps0.node());
  for (int g = 0; g < groups; ++g) {
    net.table(agg).add_from(idps0.node(), group_prefix(g), client_tors[g]);
    if (params.with_storage) {
      net.table(agg).add_from(idps0.node(),
                              Prefix::host(private_server_address(g)),
                              server_tors[g]);
      net.table(agg).add_from(idps0.node(),
                              Prefix::host(public_server_address(g)),
                              server_tors[g]);
    }
  }
  if (params.with_storage) {
    // Requests (dst in the server block) divert from client racks through
    // the cache before the FW; responses from server racks likewise pass
    // the cache (getting recorded). Everything the cache emits - forwarded
    // requests, forwarded responses and cache-hit responses - continues
    // through the firewall, which polices both directions.
    for (NodeId tor : client_tors) {
      net.table(agg).add_from(tor, all_servers_prefix(), out.cache->node());
    }
    for (NodeId stor : server_tors) {
      net.table(agg).add_from(stor, Prefix(Address::of(10, 0, 0, 0), 8),
                              out.cache->node());
    }
    net.table(agg).add_from(out.cache->node(),
                            Prefix(Address::of(10, 0, 0, 0), 8),
                            out.fw_primary->node());
  }

  // -- failure scenarios ------------------------------------------------------
  if (params.redundancy) {
    out.fw_down = net.add_failure_scenario("fw-0-down",
                                           {out.fw_primary->node()});
    out.idps_down = net.add_failure_scenario("idps-0-down", {idps0.node()});

    // fw-0-down: the chain enters at fw-1 instead; fw-1's output follows
    // the same paths fw-0's did.
    net::ForwardingTable& t_fw = net.table(agg, out.fw_down);
    t_fw.add(Prefix::any(), out.fw_backup->node(), /*priority=*/9);
    t_fw.add_from(out.fw_backup->node(), Prefix(Address::of(10, 0, 0, 0), 8),
                  idps0.node(), /*priority=*/9);
    if (params.with_storage) {
      t_fw.add_from(out.cache->node(), Prefix(Address::of(10, 0, 0, 0), 8),
                    out.fw_backup->node(), /*priority=*/9);
    }

    // idps-0-down: fw output and cache responses go to idps-1, which then
    // delivers to the racks.
    net::ForwardingTable& t_id = net.table(agg, out.idps_down);
    t_id.add_from(out.fw_primary->node(), Prefix(Address::of(10, 0, 0, 0), 8),
                  idps1->node(), /*priority=*/9);
    for (int g = 0; g < groups; ++g) {
      t_id.add_from(idps1->node(), group_prefix(g), client_tors[g],
                    /*priority=*/9);
      if (params.with_storage) {
        t_id.add_from(idps1->node(), Prefix::host(private_server_address(g)),
                      server_tors[g], /*priority=*/9);
        t_id.add_from(idps1->node(), Prefix::host(public_server_address(g)),
                      server_tors[g], /*priority=*/9);
      }
    }
    if (params.with_storage) {
      // Cache output still goes to fw-0 (alive in this scenario); only the
      // load balancer's direct path needs redirecting.
      t_id.add_from(net.node_by_name("lb"), Prefix(Address::of(10, 0, 0, 0), 8),
                    idps1->node(), /*priority=*/8);
    }
  }

  return out;
}

std::vector<Invariant> Datacenter::isolation_invariants() const {
  std::vector<Invariant> out;
  const int groups = static_cast<int>(group_clients.size());
  for (int g = 0; g < groups; ++g) {
    const int next = (g + 1) % groups;
    out.push_back(Invariant::node_isolation(group_clients[next].front(),
                                            group_clients[g].front()));
  }
  return out;
}

std::vector<Invariant> Datacenter::traversal_invariants() const {
  // Scoped to a same-group sender (cross-group traffic is denied by the
  // firewall anyway), which keeps the slice constant-size.
  std::vector<Invariant> out;
  for (const auto& clients : group_clients) {
    NodeId sender = clients.size() > 1 ? clients[1] : clients.front();
    out.push_back(
        Invariant::traversal_from(clients.front(), sender, "idps"));
  }
  return out;
}

std::vector<Invariant> Datacenter::data_isolation_invariants() const {
  std::vector<Invariant> out;
  const int groups = static_cast<int>(group_clients.size());
  for (int g = 0; g < groups; ++g) {
    const int next = (g + 1) % groups;
    out.push_back(Invariant::data_isolation(group_clients[next].front(),
                                            private_servers[g]));
  }
  return out;
}

bool Datacenter::pair_broken(int src_group, int dst_group) const {
  for (auto [s, d] : broken_pairs) {
    if (s == src_group && d == dst_group) return true;
  }
  return false;
}

Batch Datacenter::batch() const {
  Batch out;
  out.name = "datacenter";
  out.invariants = isolation_invariants();
  const int groups = static_cast<int>(out.invariants.size());
  for (int g = 0; g < groups; ++g) {
    const int next = (g + 1) % groups;
    bool broken = false;
    for (auto [s, d] : broken_isolation_pairs) {
      if (s == g && d == next) broken = true;
    }
    out.expected_holds.push_back(!broken);
  }
  return out;
}

void inject_misconfig(Datacenter& dc, DcMisconfig kind, Rng& rng,
                      int strength) {
  const int groups = static_cast<int>(dc.group_clients.size());
  auto pick_group = [&] { return static_cast<int>(rng.uniform(0, groups - 1)); };

  auto delete_deny = [&](mbox::LearningFirewall* fw, int src_g, int dst_g) {
    // Find the deny entry (prefix src_g -> prefix dst_g) and remove it.
    const auto& acl = fw->acl();
    for (std::size_t i = 0; i < acl.size(); ++i) {
      if (acl[i].action == AclAction::deny &&
          acl[i].src == group_prefix(src_g) &&
          acl[i].dst == group_prefix(dst_g)) {
        fw->remove_entry(i);
        return;
      }
    }
  };

  for (int k = 0; k < strength; ++k) {
    const int g = pick_group();
    const int d = (g + 1) % groups;
    switch (kind) {
      case DcMisconfig::none:
        return;
      case DcMisconfig::rules:
        delete_deny(dc.fw_primary, g, d);
        if (dc.fw_backup != nullptr) delete_deny(dc.fw_backup, g, d);
        dc.broken_pairs.emplace_back(g, d);
        dc.broken_isolation_pairs.emplace_back(g, d);
        break;
      case DcMisconfig::redundancy:
        if (dc.fw_backup != nullptr) {
          delete_deny(dc.fw_backup, g, d);
          dc.broken_pairs.emplace_back(g, d);
        }
        break;
      case DcMisconfig::traversal: {
        // Under idps-0-down, reroute fw output straight to the racks,
        // bypassing idps-1 (priority above the failover rules).
        net::Network& net = dc.model.network();
        NodeId agg = net.node_by_name("agg");
        net::ForwardingTable& t = net.table(agg, dc.idps_down);
        for (int gg = 0; gg < groups; ++gg) {
          t.add_from(dc.fw_primary->node(), group_prefix(gg),
                     net.node_by_name("tor" + std::to_string(gg)),
                     /*priority=*/20);
          dc.broken_pairs.emplace_back(gg, gg);
        }
        return;  // one shot is total
      }
      case DcMisconfig::cache_acl: {
        if (dc.cache == nullptr) return;
        const Address srv =
            dc.model.network()
                .node(dc.private_servers[static_cast<std::size_t>(g)])
                .address;
        // Remove the cache deny entry protecting group g's private data
        // from group d's clients...
        const auto& acl = dc.cache->acl();
        for (std::size_t i = 0; i < acl.size(); ++i) {
          if (acl[i].deny && acl[i].client == group_prefix(d) &&
              acl[i].origin == srv) {
            dc.cache->remove_entry(i);
            break;
          }
        }
        // ...and the firewalls' outbound deny for the same pair (the paper
        // deletes ACLs "from the content cache and firewalls"). The
        // request-direction deny stays: direct fetches remain blocked, so
        // any violation genuinely flows through the cache.
        auto delete_srv_deny = [&](mbox::LearningFirewall* fw) {
          if (fw == nullptr) return;
          const auto& fw_acl = fw->acl();
          for (std::size_t i = 0; i < fw_acl.size(); ++i) {
            if (fw_acl[i].action == AclAction::deny &&
                fw_acl[i].src == Prefix::host(srv) &&
                fw_acl[i].dst == group_prefix(d)) {
              fw->remove_entry(i);
              return;
            }
          }
        };
        delete_srv_deny(dc.fw_primary);
        delete_srv_deny(dc.fw_backup);
        dc.broken_pairs.emplace_back(g, d);
        break;
      }
    }
  }
}

}  // namespace vmn::scenarios
