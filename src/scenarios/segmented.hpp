// Segmented network: mutually disconnected segments with *identical*
// middlebox configurations (the representative-sender soundness workload).
//
//   segment i:   h<i>-0 .. h<i>-k --- s<i>a ==(idps<i>)== s<i>b --- srv<i>
//
// Every segment runs the same dropping IDPS in front of its server, and no
// link crosses segments - so every host fingerprints identically against
// every middlebox and configuration-only policy-class inference merges all
// of them into one class, even though each sender's packets can only ever
// be delivered inside its own segment. All-senders invariants
// (no-malicious-delivery, unconstrained traversal) seed their slice with
// representative senders per class; a fixed first-member representative
// lives in segment 0 and cannot reach any other segment's server, so before
// reachability-aware representative selection the sliced verdict for a
// *misrouted* segment (see bypass_segment) silently disagreed with the
// whole network. This generator exists to pin that behavior down:
//
//   - bypass_segment: that segment's sender-to-server routes skip its IDPS,
//     so its no-malicious-delivery and traversal invariants are violated -
//     but only a sender of the *same segment* can witness it;
//   - isolated_segment: that segment carries no routes at all, giving its
//     hosts an empty delivery signature - reachability refinement must
//     split them off the shared class while leaving truly symmetric
//     segments merged.
#pragma once

#include "encode/invariant.hpp"
#include "encode/model.hpp"
#include "scenarios/batch.hpp"

namespace vmn::scenarios {

struct SegmentedParams {
  int segments = 2;
  int senders_per_segment = 2;
  /// Segment whose sender-to-server routing bypasses its IDPS (the
  /// representative-sender unsoundness reproducer); -1 = none.
  int bypass_segment = -1;
  /// Segment whose switches carry no routes at all (an isolated island:
  /// its hosts reach nothing, not even each other); -1 = none.
  int isolated_segment = -1;
};

struct Segmented {
  encode::NetworkModel model;
  std::vector<std::vector<NodeId>> segment_senders;  ///< per segment
  std::vector<NodeId> segment_servers;               ///< per segment
  std::vector<NodeId> segment_idps;                  ///< per segment

  /// Two all-senders invariants per segment - no-malicious-delivery on the
  /// server and IDPS traversal - with expectations: both violated exactly
  /// for the bypassed segment, held everywhere else (an isolated segment
  /// delivers nothing, so both hold vacuously).
  std::vector<encode::Invariant> invariants;
  std::vector<bool> expected_holds;

  /// The uniform batch view (scenarios/batch.hpp).
  [[nodiscard]] Batch batch() const;
};

[[nodiscard]] Segmented make_segmented(const SegmentedParams& params);

}  // namespace vmn::scenarios
