// Enterprise network with a stateful firewall (paper, section 5.3.1, Fig 6).
//
//   Internet --- FW --- GW --- { subnet_1, subnet_2, ..., subnet_k }
//
// Subnets cycle through three policy classes:
//   - public:      hosts may initiate and accept connections externally;
//   - private:     hosts may initiate but never accept (flow isolation);
//   - quarantined: hosts may not communicate externally at all.
//
// The firewall enforces the classes with subnet-granularity ACL entries;
// the generated configuration is correct, so every invariant holds (the
// paper evaluates verification time for this all-holds case in Fig 7).
#pragma once

#include "encode/invariant.hpp"
#include "encode/model.hpp"
#include "scenarios/batch.hpp"

namespace vmn::scenarios {

enum class SubnetKind : std::uint8_t { public_net, private_net, quarantined };

struct EnterpriseParams {
  int subnets = 3;
  int hosts_per_subnet = 2;
};

struct Enterprise {
  encode::NetworkModel model;
  NodeId internet;                          ///< the external peer host
  std::vector<std::vector<NodeId>> subnet_hosts;
  std::vector<SubnetKind> subnet_kind;

  /// One invariant per subnet expressing its class's policy, plus the
  /// expected outcome (true = holds / reachable).
  std::vector<encode::Invariant> invariants;
  std::vector<bool> expected_holds;

  /// The uniform batch view (scenarios/batch.hpp).
  [[nodiscard]] Batch batch() const;
};

[[nodiscard]] Enterprise make_enterprise(const EnterpriseParams& params);

/// Kind of subnet `i` (cycles public, private, quarantined).
[[nodiscard]] SubnetKind subnet_kind_of(int index);

}  // namespace vmn::scenarios
