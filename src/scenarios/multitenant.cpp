#include "scenarios/multitenant.hpp"

#include "mbox/firewall.hpp"

namespace vmn::scenarios {

using encode::Invariant;
using mbox::AclAction;
using mbox::AclEntry;

namespace {

Prefix tenant_prefix(int t) {
  return Prefix(Address::of(10, static_cast<std::uint8_t>(t >> 8),
                            static_cast<std::uint8_t>(t & 0xff), 0),
                24);
}

Address vm_address(int t, int index) {
  return Address(tenant_prefix(t).base().bits() +
                 static_cast<std::uint32_t>(index) + 1);
}

}  // namespace

MultiTenant make_multitenant(const MultiTenantParams& params) {
  MultiTenant out;
  net::Network& net = out.model.network();

  NodeId spine = net.add_switch("spine");

  struct Server {
    NodeId sw;
    mbox::LearningFirewall* vsfw;
    std::vector<AclEntry> acl;
    std::vector<std::pair<NodeId, Address>> vms;
  };
  std::vector<Server> servers(static_cast<std::size_t>(params.servers));
  for (int s = 0; s < params.servers; ++s) {
    Server& srv = servers[static_cast<std::size_t>(s)];
    srv.sw = net.add_switch("ssw" + std::to_string(s));
    net.add_link(srv.sw, spine);
    srv.vsfw = &out.model.add_middlebox(std::make_unique<mbox::LearningFirewall>(
        "vsfw" + std::to_string(s), std::vector<AclEntry>{}, AclAction::deny));
    net.add_link(srv.vsfw->node(), srv.sw);
  }

  // Place VMs round-robin and accumulate per-server security-group rules.
  const int vms_per_tenant =
      params.public_vms_per_tenant + params.private_vms_per_tenant;
  for (int t = 0; t < params.tenants; ++t) {
    out.public_vms.emplace_back();
    out.private_vms.emplace_back();
    for (int k = 0; k < vms_per_tenant; ++k) {
      const bool is_public = k < params.public_vms_per_tenant;
      const Address addr = vm_address(t, k);
      Server& srv = servers[static_cast<std::size_t>((t + k) % params.servers)];
      NodeId vm = net.add_host(
          "vm-t" + std::to_string(t) + "-" + std::to_string(k), addr);
      net.add_link(vm, srv.sw);
      srv.vms.emplace_back(vm, addr);
      out.model.set_policy_class(
          vm, PolicyClassId{static_cast<std::uint32_t>(2 * t +
                                                       (is_public ? 0 : 1))});
      (is_public ? out.public_vms : out.private_vms).back().push_back(vm);

      // Ingress rules for the VM's security group. Private VMs get an
      // explicit deny after their tenant allow so that a co-located VM's
      // *egress* allow (appended at the end, below) can never admit foreign
      // ingress traffic - one vswitch polices both directions, and the
      // first-match order implements "egress(A) AND ingress(B)".
      if (is_public) {
        srv.acl.push_back(
            AclEntry{Prefix::any(), Prefix::host(addr), AclAction::allow});
      } else {
        srv.acl.push_back(AclEntry{tenant_prefix(t), Prefix::host(addr),
                                   AclAction::allow});
        srv.acl.push_back(
            AclEntry{Prefix::any(), Prefix::host(addr), AclAction::deny});
      }
    }
  }
  // Egress rules, appended after every ingress rule: VMs may send anywhere.
  for (Server& srv : servers) {
    for (auto [vm, addr] : srv.vms) {
      srv.acl.push_back(
          AclEntry{Prefix::host(addr), Prefix::any(), AclAction::allow});
    }
  }

  // Install the accumulated rules and the per-server forwarding tables:
  // all VM traffic (both directions) crosses the server's vswitch firewall.
  for (Server& srv : servers) {
    srv.vsfw->replace_acl(srv.acl);

    for (auto [vm, addr] : srv.vms) {
      net.table(srv.sw).add_from(srv.vsfw->node(), Prefix::host(addr), vm);
      net.table(srv.sw).add_from(spine, Prefix::host(addr),
                                 srv.vsfw->node());
    }
    net.table(srv.sw).add(Prefix::any(), srv.vsfw->node());
    net.table(srv.sw).add_from(srv.vsfw->node(), Prefix::any(), spine, -1);
  }
  // Spine: route on tenant /24s toward the owning server's switch - but a
  // VM's /32 must go to *its* server, so install host routes.
  for (const Server& srv : servers) {
    for (auto [vm, addr] : srv.vms) {
      net.table(spine).add(Prefix::host(addr), srv.sw);
    }
  }

  return out;
}

Invariant MultiTenant::priv_priv() const {
  return Invariant::flow_isolation(private_vms[1].front(),
                                   private_vms[0].front());
}

Invariant MultiTenant::pub_priv() const {
  return Invariant::flow_isolation(private_vms[1].front(),
                                   public_vms[0].front());
}

Invariant MultiTenant::priv_pub() const {
  return Invariant::reachable(public_vms[1].front(), private_vms[0].front());
}

std::vector<Invariant> MultiTenant::invariants() const {
  return {priv_priv(), pub_priv(), priv_pub()};
}

Batch MultiTenant::batch() const {
  Batch out;
  out.name = "multitenant";
  out.invariants = invariants();
  out.expected_holds.assign(out.invariants.size(), true);
  return out;
}

}  // namespace vmn::scenarios
