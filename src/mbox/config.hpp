// Declarative middlebox configuration descriptors.
//
// Every dedup layer the planner has (policy classes, canonical slice keys,
// shape bijections, verdict-level merging) ultimately grounds out in string
// renderings of middlebox configuration. Historically each box type
// hand-rolled those strings twice - policy_fingerprint and
// encoding_projection - and the two had to silently agree with emit_axioms.
// ConfigRelations replaces the hand-rolled pair with ONE structured
// descriptor per instance (Middlebox::config_relations): named relations,
// each a table of typed cells, where addr/prefix cells hold real Address /
// Prefix values - never pre-rendered strings. The derived forms are generic:
//
//   - render_projection: the complete, token-rendered axiom-determining
//     projection (Middlebox::encoding_projection). Addresses only ever pass
//     through the caller's token function, so a raw-bits leak is impossible
//     by construction.
//   - render_fingerprint: the per-address policy fingerprint
//     (Middlebox::policy_fingerprint). Rows mentioning the address render
//     canonically: prefixes by length and intra-relation occurrence id -
//     never by bits - so corresponding-but-renamed configurations
//     fingerprint equal without losing the relation's join structure.
//   - diff_config: a structural diff of two descriptors under an address
//     bijection, naming the exact relation, row and cell that differ (e.g.
//     "firewall.acl row 3: dst prefix /24 vs /16") - the precise
//     merge-blocker diagnostics behind `vmn verify --dedup-report`.
//
// The contract mirrors encoding_projection's: every configuration knob
// emit_axioms compiles - address-independent ones included - must appear in
// the descriptor, or differently-configured instances could merge.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/address.hpp"

namespace vmn::mbox {

enum class CellKind : std::uint8_t {
  addr,        ///< a single concrete address (VIP, NAT external, origin)
  prefix,      ///< an address range; projects to its relevant members
  enum_value,  ///< a symbolic mode ("drop-malicious", "monitor")
  integer,     ///< a literal number (app class ids - never renamed)
  flag,        ///< a boolean knob (an ACL entry's allow/deny action)
};

[[nodiscard]] std::string to_string(CellKind kind);

/// One typed cell of a relation row. `column` names the cell within its
/// relation ("src", "dst", "vip"); it may be empty for single-cell rows
/// whose relation name already says everything.
struct ConfigCell {
  CellKind kind = CellKind::flag;
  std::string column;
  Address addr{};
  Prefix prefix{};
  std::string sym;
  std::int64_t num = 0;
  bool on = false;

  static ConfigCell make_addr(std::string column, Address a);
  static ConfigCell make_prefix(std::string column, Prefix p);
  static ConfigCell make_enum(std::string column, std::string value);
  static ConfigCell make_int(std::string column, std::int64_t value);
  static ConfigCell make_flag(std::string column, bool value);

  /// Whether this cell's address content covers `a` (addr equality or
  /// prefix membership; value cells never match).
  [[nodiscard]] bool matches(Address a) const;
};

struct ConfigRow {
  std::vector<ConfigCell> cells;
};

/// How a relation compiles onto a slice.
enum class RelationSemantics : std::uint8_t {
  /// Ordered first-match pair table. Every row is exactly
  /// [lhs matcher, rhs matcher, flag(admit)]; the axioms consume only the
  /// admitted (lhs, rhs) matrix over relevant x relevant, with
  /// `default_admit` deciding unmatched pairs - the LearningFirewall /
  /// ContentCache shape.
  pair_match,
  /// Plain row list, projected cell by cell; prefix cells expand to the
  /// relevant addresses they contain.
  row_list,
};

struct ConfigRelation {
  std::string name;
  RelationSemantics semantics = RelationSemantics::row_list;
  /// pair_match only: the action when no row matches a pair.
  bool default_admit = false;
  /// Projection framing, pinned to the legacy renderings so ResultCache v6
  /// problem keys survive the migration byte-for-byte: "fw" frames the
  /// relation as "fw[...]"; empty renders the rows bare.
  std::string render_tag;
  /// pair_match only: the separator between the admitted pair's tokens.
  std::string pair_sep = ">";
  std::vector<ConfigRow> rows;

  /// First-match evaluation of a pair_match relation.
  [[nodiscard]] bool admits(Address lhs, Address rhs) const;
};

/// The full declarative configuration surface of one middlebox instance.
struct ConfigRelations {
  std::vector<ConfigRelation> relations;
  [[nodiscard]] bool empty() const { return relations.empty(); }
};

/// The complete axiom-determining projection over `relevant`, every address
/// rendered through `token` (see Middlebox::encoding_projection for the
/// soundness contract this rendering carries).
[[nodiscard]] std::string render_projection(
    const ConfigRelations& rels, const std::vector<Address>& relevant,
    const std::function<std::string(Address)>& token);

/// The canonical per-address fingerprint: rows whose addr/prefix cells
/// cover `a` (plus address-free rows, which are global knobs and render for
/// every address). Address content is named by prefix length and
/// first-occurrence id within the relation - never by bits - so
/// corresponding-but-renamed configurations fingerprint equal while
/// configurations that join their address groups differently keep distinct
/// fingerprints (the ids carry the relation's join structure). pair_match
/// rows render without a row index; row_list rows are positional
/// configuration and keep theirs (a load balancer's backend 0 is not its
/// backend 1).
[[nodiscard]] std::string render_fingerprint(const ConfigRelations& rels,
                                             Address a);

/// Structural diff of two descriptors under the address bijection implied
/// by the two token functions (corresponding addresses render equal
/// tokens). Returns the first difference as "<box_type>.<relation> row R:
/// <cell detail>" - e.g. "firewall.acl row 3: dst prefix /24 vs /16" - or
/// an empty string when the descriptors correspond structurally (the
/// projections may still differ through relevant-set interplay; callers
/// fall back to a generic reason).
[[nodiscard]] std::string diff_config(
    const std::string& box_type, const ConfigRelations& a,
    const ConfigRelations& b, const std::vector<Address>& relevant_a,
    const std::function<std::string(Address)>& token_a,
    const std::vector<Address>& relevant_b,
    const std::function<std::string(Address)>& token_b);

}  // namespace vmn::mbox
