#include "mbox/proxy.hpp"

namespace vmn::mbox {

namespace l = vmn::logic;
namespace ltl = vmn::logic::ltl;

void Proxy::emit_axioms(AxiomContext& ctx) const {
  const l::Vocab& v = ctx.vocab();
  l::TermFactory& f = ctx.factory();

  emit_send_axiom(ctx, [&](const l::TermPtr& q) -> ltl::FormulaPtr {
    // Case 1 - outbound re-origination: a previously received client packet
    // p continues toward its destination with the proxy as source;
    // destination, ports and data provenance are preserved.
    l::TermPtr p = ctx.fresh_packet("client");
    l::TermPtr n = ctx.fresh_node("clientn");
    l::TermPtr outbound_shape = f.and_(
        {f.neq(v.dst_of(p), ctx.addr(address_)),
         f.eq(v.src_of(q), ctx.addr(address_)),
         f.eq(v.dst_of(q), v.dst_of(p)),
         f.eq(v.src_port_of(q), v.src_port_of(p)),
         f.eq(v.dst_port_of(q), v.dst_port_of(p)),
         f.eq(v.origin_of(q), v.origin_of(p))});
    ltl::FormulaPtr outbound = ltl::exists(
        {n, p},
        ltl::and_f(ltl::once_since_up(ltl::rcv(n, ctx.self(), p), ctx.self()),
                   ltl::pred(outbound_shape)));

    // Case 2 - response forwarding: a packet r addressed to the proxy and
    // coming from a server the proxy previously contacted (some forwarded
    // request o had dst(o) = src(r)) is forwarded to some past requester,
    // provenance preserved. Shared, origin-agnostic state: *any* past
    // requester qualifies, but arbitrary hosts cannot masquerade as
    // responders.
    l::TermPtr r = ctx.fresh_packet("resp");
    l::TermPtr rn = ctx.fresh_node("respn");
    l::TermPtr req = ctx.fresh_packet("req");
    l::TermPtr reqn = ctx.fresh_node("reqn");
    l::TermPtr contacted = ctx.fresh_packet("contacted");
    l::TermPtr contactedn = ctx.fresh_node("contactedn");
    l::TermPtr inbound_shape = f.and_(
        {f.eq(v.dst_of(r), ctx.addr(address_)),
         f.eq(v.src_of(q), v.src_of(r)),
         f.eq(v.origin_of(q), v.origin_of(r)),
         f.eq(v.dst_of(q), v.src_of(req)),
         f.eq(v.src_port_of(q), v.src_port_of(r)),
         f.eq(v.dst_port_of(q), v.dst_port_of(r))});
    l::TermPtr contacted_shape =
        f.and_(f.eq(v.dst_of(contacted), v.src_of(r)),
               f.neq(v.dst_of(contacted), ctx.addr(address_)));
    ltl::FormulaPtr inbound = ltl::exists(
        {rn, r, reqn, req, contactedn, contacted},
        ltl::and_f(
            {ltl::once_since_up(ltl::rcv(rn, ctx.self(), r), ctx.self()),
             ltl::once_since_up(ltl::rcv(reqn, ctx.self(), req), ctx.self()),
             ltl::once_since_up(
                 ltl::rcv(contactedn, ctx.self(), contacted), ctx.self()),
             ltl::pred(f.and_(inbound_shape, contacted_shape))}));

    return ltl::or_f(outbound, inbound);
  });
}

std::vector<Packet> Proxy::sim_process(const Packet& p) {
  if (p.dst == address_) {
    // Response: only from servers we contacted; forward to a past requester
    // (deterministically, the first).
    if (!contacted_.contains(p.src) || requesters_.empty()) return {};
    Packet q = p;
    q.dst = *requesters_.begin();
    return {q};
  }
  requesters_.insert(p.src);
  contacted_.insert(p.dst);
  Packet q = p;
  q.src = address_;
  return {q};
}

}  // namespace vmn::mbox
