// Content cache (paper, sections 4.1 and 5.2).
//
// The cache is the canonical *origin-agnostic* middlebox: "the behavior of
// content-caches often does not depend on the connection that led to content
// being cached". Data provenance is tracked with the origin(p) abstraction
// (e.g. derived from x-http-forwarded-for, section 3.3): content fetched for
// one client is subsequently served to *any* client the ACL admits - so a
// missing ACL entry lets host A read data that only host B was ever allowed
// to fetch. This is exactly the data-isolation violation of section 5.2.
//
// Model:
//   - pass-through: previously received packets may be forwarded unchanged
//     (requests travel to the origin server; responses travel back and are
//     cached on the way);
//   - cache hit: a response carrying origin o may be synthesized for any
//     past requester, provided some packet with origin o was received since
//     the cache was last up (shared across flows - origin-agnostic) and the
//     ACL admits (client, o).
#pragma once

#include <set>

#include "mbox/middlebox.hpp"

namespace vmn::mbox {

/// One ordered cache ACL entry ("a common feature supported by most open
/// source and commercial caches", section 5.2): whether clients in `client`
/// may receive cached content whose origin is `origin`. First match decides;
/// caches default-allow, so isolation is enforced by deny entries - which is
/// why *deleting* ACL entries (section 5.2's misconfiguration) opens private
/// data to other policy groups.
struct CacheAclEntry {
  Prefix client;
  Address origin;
  bool deny = true;
};

class ContentCache final : public Middlebox {
 public:
  ContentCache(std::string name, std::vector<CacheAclEntry> acl)
      : Middlebox(std::move(name)), acl_(std::move(acl)) {}

  [[nodiscard]] std::string type() const override { return "cache"; }
  [[nodiscard]] StateScope state_scope() const override {
    return StateScope::origin_agnostic;
  }

  void emit_axioms(AxiomContext& ctx) const override;

  [[nodiscard]] bool allows(Address client, Address origin) const;
  [[nodiscard]] const std::vector<CacheAclEntry>& acl() const { return acl_; }
  void remove_entry(std::size_t index);

  /// The ACL as one pair_match relation ([client prefix, origin address,
  /// allow flag] rows, default-allow). The axioms compile it only through
  /// the allows() matrix over relevant (client, origin) pairs, so the
  /// derived projection is that matrix.
  [[nodiscard]] ConfigRelations config_relations() const override;

  void sim_reset() override {
    cached_.clear();
    requesters_.clear();
  }
  [[nodiscard]] std::vector<Packet> sim_process(const Packet& p) override;

 private:
  std::vector<CacheAclEntry> acl_;
  std::set<Address> cached_;      ///< origins with cached content
  std::set<Address> requesters_;  ///< clients seen requesting
};

}  // namespace vmn::mbox
