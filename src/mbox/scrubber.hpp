// Scrubbing box (paper, section 5.3.3): performs heavyweight analysis on
// traffic rerouted to it by the ISP's IDS boxes, "discards any part of the
// traffic that it identifies as attack traffic, and forwards the rest to
// the intended destination". Attack identification is again the
// classification oracle's malicious? abstraction.
#pragma once

#include "mbox/middlebox.hpp"

namespace vmn::mbox {

class Scrubber final : public Middlebox {
 public:
  explicit Scrubber(std::string name) : Middlebox(std::move(name)) {}

  [[nodiscard]] std::string type() const override { return "scrubber"; }
  [[nodiscard]] StateScope state_scope() const override {
    return StateScope::flow_parallel;
  }

  void emit_axioms(AxiomContext& ctx) const override;

  /// No configuration, no addresses in the axioms.
  [[nodiscard]] ConfigRelations config_relations() const override {
    return {};
  }

  void sim_reset() override {}
  [[nodiscard]] std::vector<Packet> sim_process(const Packet& p) override {
    if (p.malicious) return {};
    return {p};
  }
};

}  // namespace vmn::mbox
