#include "mbox/load_balancer.hpp"

namespace vmn::mbox {

namespace l = vmn::logic;
namespace ltl = vmn::logic::ltl;

void LoadBalancer::emit_axioms(AxiomContext& ctx) const {
  const l::Vocab& v = ctx.vocab();
  l::TermFactory& f = ctx.factory();

  // Backend choice oracle: sticky per client endpoint.
  l::FuncDeclPtr choose =
      f.func(name() + ".choose", {v.addr_sort(), l::Sort::integer()},
             v.addr_sort());

  // The oracle only picks configured backends.
  {
    l::TermPtr a = f.fresh_var("a", v.addr_sort());
    l::TermPtr pt = f.fresh_var("pt", l::Sort::integer());
    std::vector<l::TermPtr> options;
    for (Address b : backends_) {
      options.push_back(f.eq(f.app(choose, {a, pt}), ctx.addr(b)));
    }
    ctx.add_axiom(f.forall({a, pt}, f.or_(std::move(options))),
                  name() + ".choose-range");
  }

  emit_send_axiom(ctx, [&](const l::TermPtr& q) -> ltl::FormulaPtr {
    // Case 1 - request: a previously received packet p addressed to the VIP
    // is steered to the chosen backend, all other fields preserved.
    l::TermPtr p = ctx.fresh_packet("req");
    l::TermPtr n = ctx.fresh_node("reqn");
    l::TermPtr request_shape = f.and_(
        {f.eq(v.dst_of(p), ctx.addr(vip_)),
         f.eq(v.src_of(q), v.src_of(p)),
         f.eq(v.src_port_of(q), v.src_port_of(p)),
         f.eq(v.dst_port_of(q), v.dst_port_of(p)),
         f.eq(v.dst_of(q), f.app(choose, {v.src_of(p), v.src_port_of(p)}))});
    ltl::FormulaPtr request = ltl::exists(
        {n, p},
        ltl::and_f(ltl::once_since_up(ltl::rcv(n, ctx.self(), p), ctx.self()),
                   ltl::pred(request_shape)));

    // Case 2 - response: a packet from a backend is rewritten so clients see
    // the VIP as its source.
    l::TermPtr r = ctx.fresh_packet("resp");
    l::TermPtr rn = ctx.fresh_node("respn");
    std::vector<l::TermPtr> from_backend;
    for (Address b : backends_) {
      from_backend.push_back(f.eq(v.src_of(r), ctx.addr(b)));
    }
    l::TermPtr response_shape =
        f.and_({f.or_(std::move(from_backend)),
                f.eq(v.src_of(q), ctx.addr(vip_)),
                f.eq(v.dst_of(q), v.dst_of(r)),
                f.eq(v.src_port_of(q), v.src_port_of(r)),
                f.eq(v.dst_port_of(q), v.dst_port_of(r))});
    ltl::FormulaPtr response = ltl::exists(
        {rn, r},
        ltl::and_f(ltl::once_since_up(ltl::rcv(rn, ctx.self(), r), ctx.self()),
                   ltl::pred(response_shape)));

    return ltl::or_f(request, response);
  });
}

std::vector<Packet> LoadBalancer::sim_process(const Packet& p) {
  if (p.dst == vip_) {
    if (backends_.empty()) return {};
    auto key = std::pair{p.src, p.src_port};
    auto it = assignment_.find(key);
    if (it == assignment_.end()) {
      // Deterministic stickiness: hash the client endpoint.
      const std::size_t idx =
          (std::hash<std::uint32_t>{}(p.src.bits()) ^ p.src_port) %
          backends_.size();
      it = assignment_.emplace(key, backends_[idx]).first;
    }
    Packet q = p;
    q.dst = it->second;
    return {q};
  }
  for (Address b : backends_) {
    if (p.src == b) {
      Packet q = p;
      q.src = vip_;
      return {q};
    }
  }
  return {};
}

}  // namespace vmn::mbox
