#include "mbox/config.hpp"

#include <cstddef>
#include <map>

namespace vmn::mbox {

std::string to_string(CellKind kind) {
  switch (kind) {
    case CellKind::addr:
      return "addr";
    case CellKind::prefix:
      return "prefix";
    case CellKind::enum_value:
      return "enum";
    case CellKind::integer:
      return "int";
    case CellKind::flag:
      return "flag";
  }
  return "?";
}

ConfigCell ConfigCell::make_addr(std::string column, Address a) {
  ConfigCell c;
  c.kind = CellKind::addr;
  c.column = std::move(column);
  c.addr = a;
  return c;
}

ConfigCell ConfigCell::make_prefix(std::string column, Prefix p) {
  ConfigCell c;
  c.kind = CellKind::prefix;
  c.column = std::move(column);
  c.prefix = p;
  return c;
}

ConfigCell ConfigCell::make_enum(std::string column, std::string value) {
  ConfigCell c;
  c.kind = CellKind::enum_value;
  c.column = std::move(column);
  c.sym = std::move(value);
  return c;
}

ConfigCell ConfigCell::make_int(std::string column, std::int64_t value) {
  ConfigCell c;
  c.kind = CellKind::integer;
  c.column = std::move(column);
  c.num = value;
  return c;
}

ConfigCell ConfigCell::make_flag(std::string column, bool value) {
  ConfigCell c;
  c.kind = CellKind::flag;
  c.column = std::move(column);
  c.on = value;
  return c;
}

bool ConfigCell::matches(Address a) const {
  switch (kind) {
    case CellKind::addr:
      return addr == a;
    case CellKind::prefix:
      return prefix.contains(a);
    default:
      return false;
  }
}

bool ConfigRelation::admits(Address lhs, Address rhs) const {
  for (const ConfigRow& row : rows) {
    if (row.cells.size() != 3) continue;  // malformed rows never match
    if (row.cells[0].matches(lhs) && row.cells[1].matches(rhs)) {
      return row.cells[2].on;
    }
  }
  return default_admit;
}

namespace {

/// Projection rendering of one row_list cell. Labeled cells render
/// "column:value;"; unlabeled cells render the bare value (the proxy's
/// single self-address, the IDPS's bare mode token), integers with the
/// legacy "N," spelling.
void project_cell(const ConfigCell& cell, const std::vector<Address>& relevant,
                  const std::function<std::string(Address)>& token,
                  std::string& out) {
  switch (cell.kind) {
    case CellKind::addr:
      if (cell.column.empty()) {
        out += token(cell.addr);
      } else {
        out += cell.column + ":" + token(cell.addr) + ";";
      }
      break;
    case CellKind::prefix:
      // The axioms only ever see prefix *membership* of relevant addresses,
      // so that is all the projection records - nothing of the base bits.
      for (Address a : relevant) {
        if (!cell.prefix.contains(a)) continue;
        if (cell.column.empty()) {
          out += token(a) + ";";
        } else {
          out += cell.column + ":" + token(a) + ";";
        }
      }
      break;
    case CellKind::enum_value:
      if (cell.column.empty()) {
        out += cell.sym;
      } else {
        out += cell.column + ":" + cell.sym + ";";
      }
      break;
    case CellKind::integer:
      if (cell.column.empty()) {
        out += std::to_string(cell.num) + ",";
      } else {
        out += cell.column + ":" + std::to_string(cell.num) + ";";
      }
      break;
    case CellKind::flag:
      out += cell.column + (cell.on ? "+" : "-") + ";";
      break;
  }
}

[[nodiscard]] bool row_has_matchers(const ConfigRow& row) {
  for (const ConfigCell& cell : row.cells) {
    if (cell.kind == CellKind::addr || cell.kind == CellKind::prefix) {
      return true;
    }
  }
  return false;
}

[[nodiscard]] bool row_mentions(const ConfigRow& row, Address a) {
  for (const ConfigCell& cell : row.cells) {
    if (cell.matches(a)) return true;
  }
  return false;
}

/// Canonical names for the address content of the rows a given address
/// matches: every distinct addr/prefix value gets the index of its first
/// appearance across that matched subset. Relative to the matched subset -
/// not the whole relation - so two addresses whose matched rows correspond
/// under a renaming fingerprint identically even within ONE configuration:
/// an enterprise firewall's public subnets all match "allow external<->me"
/// rows and collapse into one policy class, exactly as the pre-descriptor
/// content-based fingerprints arranged. Within the subset the ids still
/// carry each address's own join structure (two matched rows naming the
/// same peer vs naming two different peers render differently).
///
/// What the ids deliberately do NOT carry is the join structure BETWEEN
/// two slice addresses (does x's deny row name y's group, or a different
/// one?). That is pairwise information and lives where pairs live: the
/// canonical slice key co-refines over each box's admitted-pair relation
/// (slice/symmetry.cpp, wl_refine's config-pair edges), which determines
/// the encoding exactly because the axioms only compile the relevant x
/// relevant admit matrix.
std::map<std::string, std::size_t> occurrence_ids(const ConfigRelation& rel,
                                                  Address a) {
  std::map<std::string, std::size_t> ids;
  for (const ConfigRow& row : rel.rows) {
    if (!row_has_matchers(row) || !row_mentions(row, a)) continue;
    for (const ConfigCell& cell : row.cells) {
      if (cell.kind != CellKind::addr && cell.kind != CellKind::prefix) {
        continue;
      }
      const std::string key = cell.kind == CellKind::addr
                                  ? "a" + cell.addr.to_string()
                                  : "p" + cell.prefix.to_string();
      ids.emplace(key, ids.size());
    }
  }
  return ids;
}

std::size_t occurrence_id(const std::map<std::string, std::size_t>& ids,
                          const ConfigCell& cell) {
  const std::string key = cell.kind == CellKind::addr
                              ? "a" + cell.addr.to_string()
                              : "p" + cell.prefix.to_string();
  return ids.at(key);
}

/// Fingerprint rendering of one cell relative to the queried address:
/// matched content is marked "@", peer content "'", address content is
/// named by its occurrence id (and, for prefixes, its length) - never by
/// its bits - and value cells render as in the projection.
void fingerprint_cell(const ConfigCell& cell, Address a,
                      const std::map<std::string, std::size_t>& ids,
                      std::string& out) {
  switch (cell.kind) {
    case CellKind::addr:
      out += cell.column + "#" + std::to_string(occurrence_id(ids, cell)) +
             (cell.addr == a ? "@" : "'");
      break;
    case CellKind::prefix:
      out += cell.column + "/" + std::to_string(cell.prefix.length()) + "#" +
             std::to_string(occurrence_id(ids, cell)) +
             (cell.prefix.contains(a) ? "@" : "'");
      break;
    case CellKind::enum_value:
      out += cell.column.empty() ? cell.sym : cell.column + ":" + cell.sym;
      break;
    case CellKind::integer:
      out += cell.column.empty()
                 ? std::to_string(cell.num) + ","
                 : cell.column + ":" + std::to_string(cell.num);
      break;
    case CellKind::flag:
      out += cell.column + (cell.on ? "+" : "-");
      break;
  }
}

}  // namespace

std::string render_projection(
    const ConfigRelations& rels, const std::vector<Address>& relevant,
    const std::function<std::string(Address)>& token) {
  std::string out;
  for (const ConfigRelation& rel : rels.relations) {
    if (!rel.render_tag.empty()) out += rel.render_tag + "[";
    if (rel.semantics == RelationSemantics::pair_match) {
      // The admitted-pair matrix over the relevant set is everything the
      // axioms compile from a first-match table (acl_term and friends), so
      // the matrix IS the projection - regardless of how the rows spell
      // their prefixes.
      for (Address lhs : relevant) {
        for (Address rhs : relevant) {
          if (rel.admits(lhs, rhs)) {
            out += token(lhs) + rel.pair_sep + token(rhs) + ";";
          }
        }
      }
    } else {
      for (const ConfigRow& row : rel.rows) {
        for (const ConfigCell& cell : row.cells) {
          project_cell(cell, relevant, token, out);
        }
      }
    }
    if (!rel.render_tag.empty()) out += "]";
  }
  return out;
}

std::string render_fingerprint(const ConfigRelations& rels, Address a) {
  std::string fp;
  for (const ConfigRelation& rel : rels.relations) {
    const std::map<std::string, std::size_t> ids = occurrence_ids(rel, a);
    for (std::size_t r = 0; r < rel.rows.size(); ++r) {
      const ConfigRow& row = rel.rows[r];
      if (!row_has_matchers(row)) {
        // Address-free row: a global knob, rendered identically for every
        // address (the IDPS mode, an app-firewall's class list).
        for (const ConfigCell& cell : row.cells) {
          fingerprint_cell(cell, a, ids, fp);
        }
        continue;
      }
      if (!row_mentions(row, a)) continue;
      fp += rel.name + ".";
      // pair_match rows are content-named first-match entries (their cells'
      // occurrence ids carry the join structure), so a renamed-isomorphic
      // table fingerprints alike without a row index. row_list rows are
      // positional configuration - a load balancer's backend 0 is not its
      // backend 1 - and keep theirs.
      if (rel.semantics == RelationSemantics::row_list) {
        fp += std::to_string(r) + ":";
      }
      for (const ConfigCell& cell : row.cells) {
        fingerprint_cell(cell, a, ids, fp);
      }
      fp += ";";
    }
    if (rel.semantics == RelationSemantics::pair_match) {
      // The default action is an address-free knob of the table.
      fp += rel.name + ".*" + (rel.default_admit ? "+" : "-");
    }
  }
  return fp;
}

namespace {

/// Token-projected membership of a prefix over a relevant set, as one
/// string (token order follows the relevant list, which arrives in
/// corresponding order on both sides of a diff).
std::string prefix_members(const Prefix& p,
                           const std::vector<Address>& relevant,
                           const std::function<std::string(Address)>& token) {
  std::string out;
  for (Address a : relevant) {
    if (p.contains(a)) out += token(a) + ";";
  }
  return out;
}

}  // namespace

std::string diff_config(const std::string& box_type, const ConfigRelations& a,
                        const ConfigRelations& b,
                        const std::vector<Address>& relevant_a,
                        const std::function<std::string(Address)>& token_a,
                        const std::vector<Address>& relevant_b,
                        const std::function<std::string(Address)>& token_b) {
  if (a.relations.size() != b.relations.size()) {
    return box_type + ": " + std::to_string(a.relations.size()) +
           " relations vs " + std::to_string(b.relations.size());
  }
  for (std::size_t i = 0; i < a.relations.size(); ++i) {
    const ConfigRelation& ra = a.relations[i];
    const ConfigRelation& rb = b.relations[i];
    const std::string where = box_type + "." + ra.name;
    if (ra.name != rb.name || ra.semantics != rb.semantics) {
      return box_type + ": relation " + ra.name + " vs " + rb.name;
    }
    if (ra.semantics == RelationSemantics::pair_match &&
        ra.default_admit != rb.default_admit) {
      return where + ": default " + (ra.default_admit ? "allow" : "deny") +
             " vs " + (rb.default_admit ? "allow" : "deny");
    }
    if (ra.rows.size() != rb.rows.size()) {
      return where + ": " + std::to_string(ra.rows.size()) + " rows vs " +
             std::to_string(rb.rows.size());
    }
    for (std::size_t r = 0; r < ra.rows.size(); ++r) {
      const ConfigRow& rowa = ra.rows[r];
      const ConfigRow& rowb = rb.rows[r];
      const std::string at = where + " row " + std::to_string(r) + ": ";
      if (rowa.cells.size() != rowb.cells.size()) {
        return at + std::to_string(rowa.cells.size()) + " cells vs " +
               std::to_string(rowb.cells.size());
      }
      for (std::size_t c = 0; c < rowa.cells.size(); ++c) {
        const ConfigCell& ca = rowa.cells[c];
        const ConfigCell& cb = rowb.cells[c];
        const std::string label =
            ca.column.empty() ? "cell " + std::to_string(c) : ca.column;
        if (ca.kind != cb.kind || ca.column != cb.column) {
          return at + label + " " + to_string(ca.kind) + " vs " +
                 (cb.column.empty() ? "cell" : cb.column) + " " +
                 to_string(cb.kind);
        }
        switch (ca.kind) {
          case CellKind::addr:
            if (token_a(ca.addr) != token_b(cb.addr)) {
              return at + label + " addr maps differently under the slice "
                          "bijection";
            }
            break;
          case CellKind::prefix:
            if (ca.prefix.length() != cb.prefix.length()) {
              return at + label + " prefix /" +
                     std::to_string(ca.prefix.length()) + " vs /" +
                     std::to_string(cb.prefix.length());
            }
            if (prefix_members(ca.prefix, relevant_a, token_a) !=
                prefix_members(cb.prefix, relevant_b, token_b)) {
              return at + label + " prefix /" +
                     std::to_string(ca.prefix.length()) +
                     " covers different slice addresses";
            }
            break;
          case CellKind::enum_value:
            if (ca.sym != cb.sym) {
              return at + label + " " + ca.sym + " vs " + cb.sym;
            }
            break;
          case CellKind::integer:
            if (ca.num != cb.num) {
              return at + label + " " + std::to_string(ca.num) + " vs " +
                     std::to_string(cb.num);
            }
            break;
          case CellKind::flag:
            if (ca.on != cb.on) {
              return at + label + (ca.on ? " allow" : " deny") + " vs" +
                     (cb.on ? " allow" : " deny");
            }
            break;
        }
      }
    }
  }
  return {};
}

}  // namespace vmn::mbox
