#include "mbox/content_cache.hpp"

#include "core/error.hpp"

namespace vmn::mbox {

namespace l = vmn::logic;
namespace ltl = vmn::logic::ltl;

bool ContentCache::allows(Address client, Address origin) const {
  for (const CacheAclEntry& e : acl_) {
    if (e.client.contains(client) && e.origin == origin) return !e.deny;
  }
  return true;  // caches default-allow; isolation comes from deny entries
}

void ContentCache::remove_entry(std::size_t index) {
  if (index >= acl_.size()) throw ModelError("cache: no such ACL entry");
  acl_.erase(acl_.begin() + static_cast<long>(index));
}

ConfigRelations ContentCache::config_relations() const {
  // One pair_match relation mirroring LearningFirewall's: the axioms
  // compile the ACL only through the allows() matrix over relevant
  // (client, origin) pairs, which is exactly what pair_match projects.
  // Caches default-allow; isolation comes from deny rows.
  ConfigRelation acl;
  acl.name = "acl";
  acl.semantics = RelationSemantics::pair_match;
  acl.default_admit = true;
  acl.render_tag = "cache";
  acl.pair_sep = "<";
  for (const CacheAclEntry& e : acl_) {
    acl.rows.push_back({{ConfigCell::make_prefix("client", e.client),
                         ConfigCell::make_addr("origin", e.origin),
                         ConfigCell::make_flag("allow", !e.deny)}});
  }
  return {{std::move(acl)}};
}

void ContentCache::emit_axioms(AxiomContext& ctx) const {
  const l::Vocab& v = ctx.vocab();
  l::TermFactory& f = ctx.factory();

  emit_send_axiom(ctx, [&](const l::TermPtr& q) -> ltl::FormulaPtr {
    // Case 1 - pass-through (miss path, both directions).
    ltl::FormulaPtr passthrough = received_before(ctx, q);

    // Case 2 - cache hit: serve content with origin o to a past requester.
    //   - some packet carrying origin(q) was received since last up
    //     (origin-agnostic shared state),
    //   - the destination previously sent a request through this cache,
    //   - the ACL admits (dst(q), origin(q)),
    //   - the response is well-formed: src(q) = origin(q).
    l::TermPtr c = ctx.fresh_packet("content");
    l::TermPtr cn = ctx.fresh_node("contentn");
    ltl::FormulaPtr cached = ltl::once_since_up(
        ltl::exists({cn, c},
                    ltl::and_f(ltl::rcv(cn, ctx.self(), c),
                               ltl::pred(f.eq(v.origin_of(c), v.origin_of(q))))),
        ctx.self());

    l::TermPtr req = ctx.fresh_packet("request");
    l::TermPtr reqn = ctx.fresh_node("requestn");
    ltl::FormulaPtr requested = ltl::once(ltl::exists(
        {reqn, req},
        ltl::and_f(ltl::rcv(reqn, ctx.self(), req),
                   ltl::pred(f.eq(v.src_of(req), v.dst_of(q))))));

    std::vector<l::TermPtr> acl_cases;
    for (Address client : ctx.relevant_addresses()) {
      for (Address origin : ctx.relevant_addresses()) {
        if (allows(client, origin)) {
          acl_cases.push_back(f.and_(f.eq(v.dst_of(q), ctx.addr(client)),
                                     f.eq(v.origin_of(q), ctx.addr(origin))));
        }
      }
    }
    l::TermPtr acl_ok = f.or_(std::move(acl_cases));
    l::TermPtr well_formed = f.eq(v.src_of(q), v.origin_of(q));

    ltl::FormulaPtr hit = ltl::and_f(
        {cached, requested, ltl::pred(f.and_(acl_ok, well_formed))});

    return ltl::or_f(passthrough, hit);
  });
}

std::vector<Packet> ContentCache::sim_process(const Packet& p) {
  std::vector<Packet> out;
  // Cache content seen in transit.
  if (p.origin) cached_.insert(*p.origin);
  requesters_.insert(p.src);
  // Serve from cache when possible and admitted.
  if (!p.origin && cached_.contains(p.dst) && allows(p.src, p.dst)) {
    Packet resp;
    resp.src = p.dst;
    resp.dst = p.src;
    resp.src_port = p.dst_port;
    resp.dst_port = p.src_port;
    resp.origin = p.dst;
    out.push_back(resp);
    return out;
  }
  // Miss (or non-request traffic): pass through.
  out.push_back(p);
  return out;
}

}  // namespace vmn::mbox
