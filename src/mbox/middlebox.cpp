#include "mbox/middlebox.hpp"

#include <algorithm>

namespace vmn::mbox {

namespace l = vmn::logic;
namespace ltl = vmn::logic::ltl;

std::string to_string(StateScope scope) {
  switch (scope) {
    case StateScope::stateless:
      return "stateless";
    case StateScope::flow_parallel:
      return "flow-parallel";
    case StateScope::origin_agnostic:
      return "origin-agnostic";
    case StateScope::global_state:
      return "global";
  }
  return "?";
}

bool AxiomContext::is_relevant(Address a) const {
  return std::find(relevant_.begin(), relevant_.end(), a) != relevant_.end();
}

ltl::FormulaPtr Middlebox::received_before(AxiomContext& ctx,
                                           const l::TermPtr& p) const {
  l::TermPtr n = ctx.fresh_node("src");
  return ltl::once(ltl::exists({n}, ltl::rcv(n, ctx.self(), p)));
}

void Middlebox::emit_send_axiom(
    AxiomContext& ctx,
    const std::function<ltl::FormulaPtr(const l::TermPtr& p)>& condition) const {
  l::TermFactory& f = ctx.factory();
  l::TermPtr n = ctx.fresh_node("n");
  l::TermPtr p = ctx.fresh_packet("p");

  ltl::FormulaPtr up_and_allowed =
      ltl::and_f(ltl::not_f(ltl::fail(ctx.self())), condition(p));

  ltl::FormulaPtr rhs;
  if (failure_mode() == FailureMode::fail_open) {
    // While down, the box degenerates to a wire: any received packet may be
    // forwarded unmodified.
    ltl::FormulaPtr open_passthrough =
        ltl::and_f(ltl::fail(ctx.self()), received_before(ctx, p));
    rhs = ltl::or_f(up_and_allowed, open_passthrough);
  } else {
    rhs = up_and_allowed;
  }

  ltl::FormulaPtr axiom = ltl::implies_f(
      ltl::snd(ctx.self(), n, p),
      ltl::and_f(ltl::pred(f.eq(n, ctx.omega())), rhs));
  ctx.add_axiom(ltl::always(ctx.vocab(), {n, p}, axiom), name() + ".send");
}

}  // namespace vmn::mbox
