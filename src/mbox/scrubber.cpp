#include "mbox/scrubber.hpp"

namespace vmn::mbox {

namespace l = vmn::logic;
namespace ltl = vmn::logic::ltl;

void Scrubber::emit_axioms(AxiomContext& ctx) const {
  const l::Vocab& v = ctx.vocab();
  emit_send_axiom(ctx, [&](const l::TermPtr& p) -> ltl::FormulaPtr {
    return ltl::and_f(received_before(ctx, p),
                      ltl::pred(ctx.factory().not_(v.malicious_of(p))));
  });
}

}  // namespace vmn::mbox
