#include "mbox/idps.hpp"

namespace vmn::mbox {

namespace l = vmn::logic;
namespace ltl = vmn::logic::ltl;

void Idps::emit_axioms(AxiomContext& ctx) const {
  const l::Vocab& v = ctx.vocab();
  emit_send_axiom(ctx, [&](const l::TermPtr& p) -> ltl::FormulaPtr {
    ltl::FormulaPtr received = received_before(ctx, p);
    if (!drop_malicious_) return received;
    return ltl::and_f(
        received,
        ltl::pred(ctx.factory().not_(v.malicious_of(p))));
  });
}

std::vector<Packet> Idps::sim_process(const Packet& p) {
  if (drop_malicious_ && p.malicious) return {};
  return {p};
}

}  // namespace vmn::mbox
