#include "mbox/firewall.hpp"

#include "core/error.hpp"

namespace vmn::mbox {

namespace l = vmn::logic;
namespace ltl = vmn::logic::ltl;

bool LearningFirewall::allows(Address src, Address dst) const {
  for (const AclEntry& e : acl_) {
    if (e.src.contains(src) && e.dst.contains(dst)) {
      return e.action == AclAction::allow;
    }
  }
  return default_action_ == AclAction::allow;
}

void LearningFirewall::remove_entry(std::size_t index) {
  if (index >= acl_.size()) throw ModelError("firewall: no such ACL entry");
  acl_.erase(acl_.begin() + static_cast<long>(index));
}

ConfigRelations LearningFirewall::config_relations() const {
  // One pair_match relation carrying the whole configuration surface.
  // Everything emit_axioms compiles from it is the admitted-pair matrix
  // over the relevant set (acl_term, used for both the live packet and the
  // flow-establishing one), which is exactly what pair_match projects - so
  // two firewalls whose matrices agree under the address bijection emit
  // identical axioms regardless of how their ACLs spell the prefixes. The
  // derived fingerprint renders matching rows by prefix length and
  // membership, never by prefix bits, so renamed-isomorphic groups land in
  // one policy class while groups whose deny rows cover different slice
  // peers stay apart.
  ConfigRelation acl;
  acl.name = "acl";
  acl.semantics = RelationSemantics::pair_match;
  acl.default_admit = default_action_ == AclAction::allow;
  acl.render_tag = "fw";
  acl.pair_sep = ">";
  for (const AclEntry& e : acl_) {
    acl.rows.push_back(
        {{ConfigCell::make_prefix("src", e.src),
          ConfigCell::make_prefix("dst", e.dst),
          ConfigCell::make_flag("allow", e.action == AclAction::allow)}});
  }
  return {{std::move(acl)}};
}

l::TermPtr LearningFirewall::acl_term(AxiomContext& ctx, const l::TermPtr& src,
                                      const l::TermPtr& dst) const {
  l::TermFactory& f = ctx.factory();
  std::vector<l::TermPtr> cases;
  // Project the (prefix-based) configuration onto the relevant address set:
  // inside a slice only slice addresses can appear as packet endpoints.
  for (Address a : ctx.relevant_addresses()) {
    for (Address b : ctx.relevant_addresses()) {
      if (allows(a, b)) {
        cases.push_back(
            f.and_(f.eq(src, ctx.addr(a)), f.eq(dst, ctx.addr(b))));
      }
    }
  }
  return f.or_(std::move(cases));
}

void LearningFirewall::emit_axioms(AxiomContext& ctx) const {
  const l::Vocab& v = ctx.vocab();
  emit_send_axiom(ctx, [&](const l::TermPtr& p) -> ltl::FormulaPtr {
    // forward(p) requires: p was received, and (acl admits p's endpoints, or
    // p's flow was established by an admitted packet seen since the last
    // failure). `established` membership is expressed over past rcv events:
    // some packet p2 of the same (direction-agnostic) flow was received and
    // admitted by the ACL.
    l::TermFactory& f = ctx.factory();
    ltl::FormulaPtr received = received_before(ctx, p);
    l::TermPtr acl_now = acl_term(ctx, v.src_of(p), v.dst_of(p));

    l::TermPtr p2 = ctx.fresh_packet("estab");
    l::TermPtr n2 = ctx.fresh_node("estab_src");
    // Same flow: equal 5-tuple, or exactly reversed.
    l::TermPtr same_dir = f.and_(
        {f.eq(v.src_of(p2), v.src_of(p)), f.eq(v.dst_of(p2), v.dst_of(p)),
         f.eq(v.src_port_of(p2), v.src_port_of(p)),
         f.eq(v.dst_port_of(p2), v.dst_port_of(p))});
    l::TermPtr rev_dir = f.and_(
        {f.eq(v.src_of(p2), v.dst_of(p)), f.eq(v.dst_of(p2), v.src_of(p)),
         f.eq(v.src_port_of(p2), v.dst_port_of(p)),
         f.eq(v.dst_port_of(p2), v.src_port_of(p))});
    l::TermPtr admitted2 = acl_term(ctx, v.src_of(p2), v.dst_of(p2));
    ltl::FormulaPtr establishing_rcv = ltl::exists(
        {n2, p2},
        ltl::and_f(ltl::rcv(n2, ctx.self(), p2),
                   ltl::pred(f.and_(f.or_(same_dir, rev_dir), admitted2))));
    // State is lost when the firewall fails: the establishing packet must
    // have been seen since the instance was last up continuously.
    ltl::FormulaPtr established =
        ltl::once_since_up(establishing_rcv, ctx.self());

    return ltl::and_f(received,
                      ltl::or_f(ltl::pred(acl_now), established));
  });
}

std::vector<Packet> LearningFirewall::sim_process(const Packet& p) {
  if (established_.contains(p.flow())) return {p};
  if (allows(p.src, p.dst)) {
    established_.insert(p.flow());
    return {p};
  }
  return {};
}

}  // namespace vmn::mbox
