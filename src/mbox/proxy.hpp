// Anonymizing forward proxy (paper, sections 4.1 and 4.2: "most proxies are
// origin-agnostic").
//
// Clients send their traffic through the proxy, which re-originates it from
// its own address; responses come back to the proxy and are forwarded to a
// past requester. Data provenance (the origin abstraction) is preserved in
// both directions - which is exactly why data-isolation invariants remain
// meaningful across proxies: "d should not access data either by directly
// contacting s or indirectly through network elements" (section 3.3).
//
// The reverse direction is deliberately loose - a response may be forwarded
// to *any* past requester, not just the flow's initiator - making the model
// origin-agnostic (shared state across flows) and conservative: if an
// invariant holds despite this proxy, it holds for any stricter
// implementation.
#pragma once

#include <set>

#include "mbox/middlebox.hpp"

namespace vmn::mbox {

class Proxy final : public Middlebox {
 public:
  Proxy(std::string name, Address proxy_address)
      : Middlebox(std::move(name)), address_(proxy_address) {}

  [[nodiscard]] std::string type() const override { return "proxy"; }
  [[nodiscard]] StateScope state_scope() const override {
    return StateScope::origin_agnostic;
  }

  void emit_axioms(AxiomContext& ctx) const override;

  [[nodiscard]] Address proxy_address() const { return address_; }
  [[nodiscard]] std::vector<Address> implicit_addresses() const override {
    return {address_};
  }

  /// The axioms mention only the proxy's own address.
  [[nodiscard]] ConfigRelations config_relations() const override {
    ConfigRelation self;
    self.name = "proxy";
    self.render_tag = "proxy";
    self.rows.push_back({{ConfigCell::make_addr("", address_)}});
    return {{std::move(self)}};
  }

  void sim_reset() override {
    requesters_.clear();
    contacted_.clear();
  }
  [[nodiscard]] std::vector<Packet> sim_process(const Packet& p) override;

 private:
  Address address_;
  std::set<Address> requesters_;  ///< clients seen (origin-agnostic state)
  std::set<Address> contacted_;   ///< servers the proxy has contacted
};

}  // namespace vmn::mbox
