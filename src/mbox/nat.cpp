#include "mbox/nat.hpp"

namespace vmn::mbox {

namespace l = vmn::logic;
namespace ltl = vmn::logic::ltl;

void Nat::emit_axioms(AxiomContext& ctx) const {
  const l::Vocab& v = ctx.vocab();
  l::TermFactory& f = ctx.factory();

  // Oracle for port remapping (Listing 2's abstract remapped_port): a
  // per-instance uninterpreted function of the original (src, src-port).
  l::FuncDeclPtr remap =
      f.func(name() + ".remap", {v.addr_sort(), l::Sort::integer()},
             l::Sort::integer());

  auto is_internal = [&](const l::TermPtr& a) {
    std::vector<l::TermPtr> cases;
    for (Address r : ctx.relevant_addresses()) {
      if (internal_.contains(r)) cases.push_back(f.eq(a, ctx.addr(r)));
    }
    return f.or_(std::move(cases));
  };

  emit_send_axiom(ctx, [&](const l::TermPtr& q) -> ltl::FormulaPtr {
    // Case 1 - outbound: q is the translation of a previously received
    // internal packet p: src rewritten to the external address, source port
    // remapped, everything else preserved.
    l::TermPtr p = ctx.fresh_packet("orig");
    l::TermPtr n = ctx.fresh_node("onode");
    l::TermPtr outbound_shape = f.and_(
        {is_internal(v.src_of(p)), f.eq(v.src_of(q), ctx.addr(external_)),
         f.eq(v.dst_of(q), v.dst_of(p)),
         f.eq(v.dst_port_of(q), v.dst_port_of(p)),
         f.eq(v.src_port_of(q),
              f.app(remap, {v.src_of(p), v.src_port_of(p)}))});
    ltl::FormulaPtr outbound = ltl::exists(
        {n, p}, ltl::and_f(ltl::once_since_up(ltl::rcv(n, ctx.self(), p),
                                              ctx.self()),
                           ltl::pred(outbound_shape)));

    // Case 2 - inbound: a packet r addressed to the external address was
    // received, and some earlier outbound original o created the mapping
    // that r's destination port matches; q is r rewritten back to o's
    // internal endpoint.
    l::TermPtr r = ctx.fresh_packet("in");
    l::TermPtr rn = ctx.fresh_node("innode");
    l::TermPtr o = ctx.fresh_packet("mapped");
    l::TermPtr on = ctx.fresh_node("mapnode");
    l::TermPtr inbound_shape = f.and_(
        {f.eq(v.dst_of(r), ctx.addr(external_)), is_internal(v.src_of(o)),
         f.eq(v.dst_port_of(r),
              f.app(remap, {v.src_of(o), v.src_port_of(o)})),
         // q = r with destination rewritten to the mapping's endpoint.
         f.eq(v.src_of(q), v.src_of(r)),
         f.eq(v.src_port_of(q), v.src_port_of(r)),
         f.eq(v.dst_of(q), v.src_of(o)),
         f.eq(v.dst_port_of(q), v.src_port_of(o))});
    ltl::FormulaPtr inbound = ltl::exists(
        {rn, r, on, o},
        ltl::and_f(
            {ltl::once_since_up(ltl::rcv(rn, ctx.self(), r), ctx.self()),
             ltl::once_since_up(ltl::rcv(on, ctx.self(), o), ctx.self()),
             ltl::pred(inbound_shape)}));

    return ltl::or_f(outbound, inbound);
  });
}

std::vector<Packet> Nat::sim_process(const Packet& p) {
  if (internal_.contains(p.src)) {
    // Outbound: allocate (or reuse) a mapping.
    auto key = std::pair{p.src, p.src_port};
    auto it = active_.find(key);
    if (it == active_.end()) {
      const std::uint16_t mapped = next_port_++;
      it = active_.emplace(key, mapped).first;
      reverse_.emplace(mapped, key);
    }
    Packet q = p;
    q.src = external_;
    q.src_port = it->second;
    return {q};
  }
  if (p.dst == external_) {
    auto it = reverse_.find(p.dst_port);
    if (it == reverse_.end()) return {};  // no mapping: drop
    Packet q = p;
    q.dst = it->second.first;
    q.dst_port = it->second.second;
    return {q};
  }
  return {};  // neither direction concerns this NAT
}

}  // namespace vmn::mbox
