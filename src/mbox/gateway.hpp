// Gateway (paper, figure 6): a stateless pass-through forwarder sitting
// between an enterprise network and its upstream. It adds no policy of its
// own - isolation is the firewall's job - but it participates in pipelines
// and can fail (taking the site offline when fail-closed).
#pragma once

#include "mbox/middlebox.hpp"

namespace vmn::mbox {

class Gateway final : public Middlebox {
 public:
  explicit Gateway(std::string name,
                   FailureMode failure_mode = FailureMode::fail_closed)
      : Middlebox(std::move(name)), failure_mode_(failure_mode) {}

  [[nodiscard]] std::string type() const override { return "gateway"; }
  [[nodiscard]] StateScope state_scope() const override {
    return StateScope::stateless;
  }
  [[nodiscard]] FailureMode failure_mode() const override {
    return failure_mode_;
  }

  void emit_axioms(AxiomContext& ctx) const override;

  /// No configuration, no addresses in the axioms (the failure mode is in
  /// the structural fingerprint, which shape matching compares separately).
  [[nodiscard]] ConfigRelations config_relations() const override {
    return {};
  }

  void sim_reset() override {}
  [[nodiscard]] std::vector<Packet> sim_process(const Packet& p) override {
    return {p};
  }

 private:
  FailureMode failure_mode_;
};

}  // namespace vmn::mbox
