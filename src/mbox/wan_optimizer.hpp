// WAN optimizer (paper, sections 1 and 3.6).
//
// Compression / encryption are "complex packet modifications" whose
// semantics VMN deliberately does not model: "modeled as replacing the
// appropriate packet header field (or payload) with a random value, this
// provides sufficient fidelity for checking reachability invariants". Our
// optimizer preserves the addressing fields and havocs the ports (stand-ins
// for the transformed payload/transport state): the emitted packet's ports
// are completely unconstrained, so the solver may pick any value - the
// random-rewrite abstraction.
#pragma once

#include "mbox/middlebox.hpp"

namespace vmn::mbox {

class WanOptimizer final : public Middlebox {
 public:
  explicit WanOptimizer(std::string name) : Middlebox(std::move(name)) {}

  [[nodiscard]] std::string type() const override { return "wan-optimizer"; }
  [[nodiscard]] StateScope state_scope() const override {
    return StateScope::flow_parallel;
  }

  void emit_axioms(AxiomContext& ctx) const override;

  /// No configuration, no addresses in the axioms.
  [[nodiscard]] ConfigRelations config_relations() const override {
    return {};
  }

  void sim_reset() override {}
  [[nodiscard]] std::vector<Packet> sim_process(const Packet& p) override {
    Packet q = p;
    // Concrete stand-in for the havoced transform.
    q.src_port = static_cast<std::uint16_t>(q.src_port * 7919u + 13u);
    q.dst_port = static_cast<std::uint16_t>(q.dst_port * 104729u + 7u);
    return {q};
  }
};

}  // namespace vmn::mbox
