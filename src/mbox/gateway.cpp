#include "mbox/gateway.hpp"

namespace vmn::mbox {

namespace ltl = vmn::logic::ltl;

void Gateway::emit_axioms(AxiomContext& ctx) const {
  emit_send_axiom(ctx, [&](const logic::TermPtr& p) -> ltl::FormulaPtr {
    return received_before(ctx, p);
  });
}

}  // namespace vmn::mbox
