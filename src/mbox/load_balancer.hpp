// Load balancer: packets addressed to the virtual IP are forwarded to one of
// the configured backends (sticky per source endpoint, chosen by an oracle);
// backend responses are rewritten back to the virtual IP. Flow-parallel.
#pragma once

#include <map>

#include "mbox/middlebox.hpp"

namespace vmn::mbox {

class LoadBalancer final : public Middlebox {
 public:
  LoadBalancer(std::string name, Address vip, std::vector<Address> backends)
      : Middlebox(std::move(name)), vip_(vip), backends_(std::move(backends)) {}

  [[nodiscard]] std::string type() const override { return "load-balancer"; }
  [[nodiscard]] StateScope state_scope() const override {
    return StateScope::flow_parallel;
  }

  void emit_axioms(AxiomContext& ctx) const override;

  [[nodiscard]] Address vip() const { return vip_; }
  [[nodiscard]] const std::vector<Address>& backends() const {
    return backends_;
  }

  /// Packets to the VIP may continue toward any backend (slice closure).
  [[nodiscard]] std::vector<Address> forward_dsts(Address dst) const override {
    if (dst == vip_) return backends_;
    return {dst};
  }
  /// Backends are reachable through the VIP.
  [[nodiscard]] std::vector<Address> inverse_addresses(
      Address target) const override {
    for (Address b : backends_) {
      if (b == target) return {vip_};
    }
    return {};
  }
  [[nodiscard]] std::vector<Address> implicit_addresses() const override {
    std::vector<Address> out = backends_;
    out.push_back(vip_);
    return out;
  }

  /// The axioms mention the VIP and each backend address (in list order).
  /// Backends are positional configuration - backend 0 is not backend 1 -
  /// which the row_list semantics preserve in the derived fingerprint.
  [[nodiscard]] ConfigRelations config_relations() const override {
    ConfigRelation lb;
    lb.name = "lb";
    lb.render_tag = "lb";
    lb.rows.push_back({{ConfigCell::make_addr("vip", vip_)}});
    for (Address b : backends_) {
      lb.rows.push_back({{ConfigCell::make_addr("b", b)}});
    }
    return {{std::move(lb)}};
  }

  void sim_reset() override { assignment_.clear(); }
  [[nodiscard]] std::vector<Packet> sim_process(const Packet& p) override;

 private:
  Address vip_;
  std::vector<Address> backends_;
  std::map<std::pair<Address, std::uint16_t>, Address> assignment_;
};

}  // namespace vmn::mbox
