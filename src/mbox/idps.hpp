// Intrusion detection and prevention system (paper, sections 5.1 and 5.3.3).
//
// The IDPS relies on the classification oracle's malicious? abstraction
// (section 2.2): it forwards previously received packets that are not
// classified as malicious and drops the rest. Whether a packet is malicious
// is entirely the oracle's choice - VMN searches over all classifications.
// Per the paper's footnote 11, the IDS used in the evaluation is
// flow-parallel with respect to a slice.
#pragma once

#include "mbox/middlebox.hpp"

namespace vmn::mbox {

class Idps final : public Middlebox {
 public:
  explicit Idps(std::string name, bool drop_malicious = true)
      : Middlebox(std::move(name)), drop_malicious_(drop_malicious) {}

  [[nodiscard]] std::string type() const override { return "idps"; }
  [[nodiscard]] StateScope state_scope() const override {
    return StateScope::flow_parallel;
  }

  void emit_axioms(AxiomContext& ctx) const override;

  /// Address-free, but axiom-relevant: a dropping IDPS and a pure monitor
  /// encode different problems and must never fingerprint equal. The mode
  /// is one address-free enum row, rendered identically for every address.
  [[nodiscard]] ConfigRelations config_relations() const override {
    ConfigRelation mode;
    mode.name = "mode";
    mode.rows.push_back({{ConfigCell::make_enum(
        "", drop_malicious_ ? "drop-malicious" : "monitor")}});
    return {{std::move(mode)}};
  }

  void sim_reset() override {}
  [[nodiscard]] std::vector<Packet> sim_process(const Packet& p) override;

  [[nodiscard]] bool drops_malicious() const { return drop_malicious_; }

 private:
  /// When false the instance is a pure monitor (off-path IDS behavior).
  bool drop_malicious_;
};

}  // namespace vmn::mbox
