// Intrusion detection and prevention system (paper, sections 5.1 and 5.3.3).
//
// The IDPS relies on the classification oracle's malicious? abstraction
// (section 2.2): it forwards previously received packets that are not
// classified as malicious and drops the rest. Whether a packet is malicious
// is entirely the oracle's choice - VMN searches over all classifications.
// Per the paper's footnote 11, the IDS used in the evaluation is
// flow-parallel with respect to a slice.
#pragma once

#include "mbox/middlebox.hpp"

namespace vmn::mbox {

class Idps final : public Middlebox {
 public:
  explicit Idps(std::string name, bool drop_malicious = true)
      : Middlebox(std::move(name)), drop_malicious_(drop_malicious) {}

  [[nodiscard]] std::string type() const override { return "idps"; }
  [[nodiscard]] StateScope state_scope() const override {
    return StateScope::flow_parallel;
  }

  void emit_axioms(AxiomContext& ctx) const override;

  /// Address-independent, but axiom-relevant: a dropping IDPS and a pure
  /// monitor encode different problems and must never fingerprint equal.
  [[nodiscard]] std::string policy_fingerprint(Address) const override {
    return drop_malicious_ ? "drop-malicious" : "monitor";
  }

  /// Address-free configuration: the mode alone determines the axioms.
  [[nodiscard]] std::string encoding_projection(
      const std::vector<Address>&,
      const std::function<std::string(Address)>&) const override {
    return policy_fingerprint(Address{});
  }

  void sim_reset() override {}
  [[nodiscard]] std::vector<Packet> sim_process(const Packet& p) override;

  [[nodiscard]] bool drops_malicious() const { return drop_malicious_; }

 private:
  /// When false the instance is a pure monitor (off-path IDS behavior).
  bool drop_malicious_;
};

}  // namespace vmn::mbox
