// Network address translator - the paper's Listing 2.
//
// Outbound packets from the internal prefix get their source rewritten to
// the NAT's external address and a remapped source port; inbound packets
// addressed to the external address are rewritten back to the internal host
// that created the mapping. Port remapping is an oracle (an uninterpreted
// per-instance function), matching Listing 2's `abstract remapped_port`.
// The NAT is flow-parallel and drops packets while failed (Listing 2 models
// failure explicitly with `when fail(this) => forward(Seq.empty)`).
#pragma once

#include <map>

#include "mbox/middlebox.hpp"

namespace vmn::mbox {

class Nat final : public Middlebox {
 public:
  Nat(std::string name, Address external, Prefix internal)
      : Middlebox(std::move(name)), external_(external), internal_(internal) {}

  [[nodiscard]] std::string type() const override { return "nat"; }
  [[nodiscard]] StateScope state_scope() const override {
    return StateScope::flow_parallel;
  }

  void emit_axioms(AxiomContext& ctx) const override;

  [[nodiscard]] Address external_address() const { return external_; }
  [[nodiscard]] const Prefix& internal_prefix() const { return internal_; }

  /// The NAT's external address is meaningful to any slice containing it.
  [[nodiscard]] std::vector<Address> implicit_addresses() const override {
    return {external_};
  }

  /// The axioms mention the external address and the internal-prefix
  /// membership of each relevant address - nothing else of the prefix -
  /// which is exactly what an addr cell plus a prefix cell project.
  [[nodiscard]] ConfigRelations config_relations() const override {
    ConfigRelation nat;
    nat.name = "nat";
    nat.render_tag = "nat";
    nat.rows.push_back({{ConfigCell::make_addr("ext", external_)}});
    nat.rows.push_back({{ConfigCell::make_prefix("int", internal_)}});
    return {{std::move(nat)}};
  }

  /// Internal hosts are reachable from outside via the external address.
  [[nodiscard]] std::vector<Address> inverse_addresses(
      Address target) const override {
    if (internal_.contains(target)) return {external_};
    return {};
  }

  void sim_reset() override {
    active_.clear();
    reverse_.clear();
    next_port_ = first_remapped_port;
  }
  [[nodiscard]] std::vector<Packet> sim_process(const Packet& p) override;

  static constexpr std::uint16_t first_remapped_port = 50000;

 private:
  Address external_;
  Prefix internal_;
  // Concrete state (simulator): Listing 2's `active` and `reverse` maps.
  std::map<std::pair<Address, std::uint16_t>, std::uint16_t> active_;
  std::map<std::uint16_t, std::pair<Address, std::uint16_t>> reverse_;
  std::uint16_t next_port_ = first_remapped_port;
};

}  // namespace vmn::mbox
