#include "mbox/app_firewall.hpp"

#include <algorithm>

namespace vmn::mbox {

namespace l = vmn::logic;
namespace ltl = vmn::logic::ltl;

ConfigRelations AppFirewall::config_relations() const {
  // Sorted so semantically equal configurations built in different entry
  // orders describe (and therefore fingerprint) identically.
  std::vector<std::uint16_t> classes(blocked_);
  std::sort(classes.begin(), classes.end());
  ConfigRelation rel;
  rel.name = "app-classes";
  rel.rows.push_back({{ConfigCell::make_enum("", exclusive_ ? "x:" : "o:")}});
  for (std::uint16_t c : classes) {
    rel.rows.push_back({{ConfigCell::make_int("", c)}});
  }
  return {{std::move(rel)}};
}

void AppFirewall::emit_axioms(AxiomContext& ctx) const {
  const l::Vocab& v = ctx.vocab();
  l::TermFactory& f = ctx.factory();

  emit_send_axiom(ctx, [&](const l::TermPtr& p) -> ltl::FormulaPtr {
    std::vector<l::TermPtr> not_blocked;
    if (exclusive_) {
      // Exclusive encoding: app-class(p) is a single integer; a packet
      // cannot be two applications at once.
      for (std::uint16_t c : blocked_) {
        not_blocked.push_back(
            f.neq(v.app_class_of(p), f.int_val(static_cast<std::int64_t>(c))));
      }
    } else {
      // Section 3.6 encoding: one unconstrained boolean oracle per class.
      // Without mutual-exclusion constraints the solver may classify one
      // packet as several applications simultaneously (a modeled source of
      // false positives).
      for (std::uint16_t c : blocked_) {
        l::FuncDeclPtr is_class =
            f.func("class-" + std::to_string(c) + "?", {v.packet_sort()},
                   l::Sort::boolean());
        not_blocked.push_back(f.not_(f.app(is_class, {p})));
      }
    }
    return ltl::and_f(received_before(ctx, p),
                      ltl::pred(f.and_(std::move(not_blocked))));
  });
}

std::vector<Packet> AppFirewall::sim_process(const Packet& p) {
  if (std::find(blocked_.begin(), blocked_.end(), p.app_class) !=
      blocked_.end()) {
    return {};
  }
  return {p};
}

}  // namespace vmn::mbox
