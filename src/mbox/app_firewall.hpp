// Application-level firewall (paper, sections 2.2 and 3.4).
//
// The firewall blocks configured application classes (e.g. "drop all Skype
// traffic"). Application membership is decided by the classification oracle
// through the app-class(p) abstraction - "an operator may wish to drop all
// Skype traffic, but does not know (or care) about the precise mechanisms an
// application-level firewall uses to identify such traffic".
//
// Encoding application classes as a single integer-valued function bakes in
// the output constraint that a packet belongs to at most one application
// class. Constructing the instance with `exclusive_classes = false` instead
// uses one boolean oracle function per class with no mutual-exclusion
// constraint, which reproduces the false-positive example of section 3.6
// (a packet may then be classified as both Skype and Jabber).
#pragma once

#include "mbox/middlebox.hpp"

namespace vmn::mbox {

class AppFirewall final : public Middlebox {
 public:
  AppFirewall(std::string name, std::vector<std::uint16_t> blocked_classes,
              bool exclusive_classes = true)
      : Middlebox(std::move(name)),
        blocked_(std::move(blocked_classes)),
        exclusive_(exclusive_classes) {}

  [[nodiscard]] std::string type() const override { return "app-firewall"; }
  [[nodiscard]] StateScope state_scope() const override {
    // Correct classification requires seeing the whole flow (an input
    // constraint in the paper's terms); state is still per-flow.
    return StateScope::flow_parallel;
  }

  void emit_axioms(AxiomContext& ctx) const override;

  /// Address-free configuration: the exclusivity mode and the blocked class
  /// ids (literal integers, never renamed) both change the emitted axioms,
  /// so both enter the descriptor as address-free rows.
  [[nodiscard]] ConfigRelations config_relations() const override;

  [[nodiscard]] const std::vector<std::uint16_t>& blocked_classes() const {
    return blocked_;
  }
  [[nodiscard]] bool exclusive_classes() const { return exclusive_; }

  void sim_reset() override {}
  [[nodiscard]] std::vector<Packet> sim_process(const Packet& p) override;

 private:
  std::vector<std::uint16_t> blocked_;
  bool exclusive_;
};

}  // namespace vmn::mbox
