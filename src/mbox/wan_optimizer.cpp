#include "mbox/wan_optimizer.hpp"

namespace vmn::mbox {

namespace l = vmn::logic;
namespace ltl = vmn::logic::ltl;

void WanOptimizer::emit_axioms(AxiomContext& ctx) const {
  const l::Vocab& v = ctx.vocab();
  l::TermFactory& f = ctx.factory();
  emit_send_axiom(ctx, [&](const l::TermPtr& q) -> ltl::FormulaPtr {
    // q is some received packet with addressing preserved and ports havoced:
    // only src/dst are related to the original; ports are left free.
    l::TermPtr p = ctx.fresh_packet("pre");
    l::TermPtr n = ctx.fresh_node("pren");
    l::TermPtr shape = f.and_({f.eq(v.src_of(q), v.src_of(p)),
                               f.eq(v.dst_of(q), v.dst_of(p))});
    return ltl::exists(
        {n, p},
        ltl::and_f(ltl::once(ltl::rcv(n, ctx.self(), p)), ltl::pred(shape)));
  });
}

}  // namespace vmn::mbox
