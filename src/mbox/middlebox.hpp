// Middlebox models (paper, section 3.4).
//
// Each middlebox type provides two semantics that must agree:
//   - symbolic: emit_axioms() contributes first-order axioms describing when
//     the instance may send a packet (always conditioned on packets it
//     received in the past - mutable datapath state is encoded as conditions
//     over past rcv events, exactly like the axioms derived from Listing 1);
//   - concrete: sim_process() executes the same forwarding model on real
//     packets (used by the discrete-event simulator to cross-validate the
//     encoding in property tests).
//
// Instances are annotated with their state scope (flow-parallel /
// origin-agnostic, section 4.1) which drives slice computation, and their
// failure mode (fail-closed / fail-open, section 3.4).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/address.hpp"
#include "core/ids.hpp"
#include "core/packet.hpp"
#include "logic/builder.hpp"
#include "logic/ltl.hpp"
#include "mbox/config.hpp"

namespace vmn::mbox {

/// How middlebox state is partitioned (paper, section 4.1).
enum class StateScope : std::uint8_t {
  stateless,       ///< no mutable state (treated as flow-parallel for slicing)
  flow_parallel,   ///< state partitioned by flow, touched only by that flow
  origin_agnostic, ///< state shared across flows, insensitive to originator
  global_state,    ///< arbitrary shared state (defeats constant-size slices)
};

[[nodiscard]] std::string to_string(StateScope scope);

/// Behavior while the instance is down (paper, section 3.4).
enum class FailureMode : std::uint8_t {
  fail_closed,  ///< packets are dropped during failure
  fail_open,    ///< packets are forwarded unmodified during failure
};

/// Everything a model needs to write its axioms. Built by the encoder for
/// each verification run; `relevant` is the slice's address set, onto which
/// instances project their configuration so that slice formulas stay
/// slice-sized.
class AxiomContext {
 public:
  AxiomContext(logic::Vocab& vocab, logic::TermPtr self, logic::TermPtr omega,
               std::vector<Address> relevant,
               std::function<void(logic::TermPtr, std::string)> sink)
      : vocab_(&vocab),
        self_(std::move(self)),
        omega_(std::move(omega)),
        relevant_(std::move(relevant)),
        sink_(std::move(sink)) {}

  [[nodiscard]] logic::Vocab& vocab() const { return *vocab_; }
  [[nodiscard]] logic::TermFactory& factory() const {
    return vocab_->factory();
  }
  /// Node constant of the middlebox being encoded.
  [[nodiscard]] const logic::TermPtr& self() const { return self_; }
  /// Node constant of the network pseudo-node.
  [[nodiscard]] const logic::TermPtr& omega() const { return omega_; }

  [[nodiscard]] logic::TermPtr addr(Address a) const {
    return factory().int_val(static_cast<std::int64_t>(a.bits()));
  }
  [[nodiscard]] const std::vector<Address>& relevant_addresses() const {
    return relevant_;
  }
  [[nodiscard]] bool is_relevant(Address a) const;

  void add_axiom(const logic::TermPtr& axiom, const std::string& label) const {
    sink_(axiom, label);
  }

  // Fresh variables for quantified axioms.
  [[nodiscard]] logic::TermPtr fresh_packet(const std::string& stem) const {
    return factory().fresh_var(stem, vocab_->packet_sort());
  }
  [[nodiscard]] logic::TermPtr fresh_node(const std::string& stem) const {
    return factory().fresh_var(stem, vocab_->node_sort());
  }

 private:
  logic::Vocab* vocab_;
  logic::TermPtr self_;
  logic::TermPtr omega_;
  std::vector<Address> relevant_;
  std::function<void(logic::TermPtr, std::string)> sink_;
};

/// Abstract middlebox instance. Concrete models live in this directory;
/// new types subclass and implement both semantics.
class Middlebox {
 public:
  explicit Middlebox(std::string name) : name_(std::move(name)) {}
  virtual ~Middlebox() = default;
  Middlebox(const Middlebox&) = delete;
  Middlebox& operator=(const Middlebox&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] NodeId node() const { return node_; }
  /// Binds the instance to its topology attachment point.
  void attach(NodeId node) { node_ = node; }

  [[nodiscard]] virtual std::string type() const = 0;
  [[nodiscard]] virtual StateScope state_scope() const = 0;
  [[nodiscard]] virtual FailureMode failure_mode() const {
    return FailureMode::fail_closed;
  }

  /// Canonical "type:state-scope:failure-mode" triple - the instance's
  /// configuration-independent structure. Single source for every relation
  /// that must treat structurally-alike boxes alike: canonical slice keys
  /// color member middleboxes with it (slice/symmetry.cpp) and policy-class
  /// refinement describes traversed paths with it (slice/policy.cpp); a new
  /// axiom-relevant structural attribute belongs here so the two can never
  /// drift apart.
  [[nodiscard]] std::string structural_fingerprint() const {
    return type() + ":" + std::to_string(static_cast<int>(state_scope())) +
           ":" + std::to_string(static_cast<int>(failure_mode()));
  }

  /// Contributes this instance's axioms (symbolic semantics).
  virtual void emit_axioms(AxiomContext& ctx) const = 0;

  // -- slice support -------------------------------------------------------
  /// Destinations this instance may forward a packet addressed to `dst`
  /// toward (identity for pass-through boxes; backends for load balancers).
  [[nodiscard]] virtual std::vector<Address> forward_dsts(Address dst) const {
    return {dst};
  }
  /// Alias addresses through which `target` may be reached via this
  /// instance (the inverse of forward_dsts): the VIP for a load-balancer
  /// backend, the external address for a NAT-internal host. Slice closure
  /// explores flows toward these aliases as well.
  [[nodiscard]] virtual std::vector<Address> inverse_addresses(
      Address target) const {
    (void)target;
    return {};
  }
  /// Addresses that must be considered relevant whenever this instance is
  /// in a slice (e.g. a NAT's external address).
  [[nodiscard]] virtual std::vector<Address> implicit_addresses() const {
    return {};
  }

  // -- configuration surface (paper, section 4.1) ----------------------------
  /// The instance's full declarative configuration: named relations of typed
  /// cells, addr/prefix cells holding real Address values (see
  /// mbox/config.hpp). This is the ONE place a box type describes its
  /// configuration; policy_fingerprint, encoding_projection and the dedup
  /// diagnostics are all derived from it generically and cannot be
  /// overridden.
  ///
  /// Contract: every configuration knob that emit_axioms compiles into the
  /// solver problem MUST appear in the descriptor - address-independent
  /// settings (e.g. an IDPS's drop-vs-monitor mode) included, as
  /// address-free rows. The canonical slice key
  /// (slice::canonical_slice_key) dedups verification jobs by the derived
  /// fingerprint and cross-isomorphic encoding reuse
  /// (slice::shape_bijection) by the derived projection; an undescribed
  /// knob lets two differently-configured same-type instances share a job
  /// and one invariant silently inherit the other's verdict. Return an
  /// empty descriptor only for boxes with no configuration at all.
  [[nodiscard]] virtual ConfigRelations config_relations() const = 0;

  /// Canonical description of how this instance's configuration treats
  /// address `a`. Hosts with identical fingerprints across all middleboxes
  /// (and identical forwarding chains) are policy-equivalent; removal of a
  /// configuration entry changes the affected hosts' fingerprints, which is
  /// how "removal of rules breaks symmetry" (section 5.1) materializes.
  ///
  /// Derived: filters config_relations() to rows mentioning `a` (plus
  /// address-free rows, which are global knobs) and renders them
  /// canonically - prefixes by length, peer addresses by column shape,
  /// never by raw bits - so corresponding-but-renamed configurations
  /// fingerprint equal. Final by design: box types describe configuration,
  /// they do not render it.
  [[nodiscard]] std::string policy_fingerprint(Address a) const {
    return render_fingerprint(config_relations(), a);
  }

  /// Canonical rendering of everything emit_axioms compiles from this
  /// instance's configuration over the `relevant` address set, with every
  /// address written through `token` instead of its raw bits.
  ///
  /// Cross-isomorphic encoding reuse (slice::shape_bijection) compares two
  /// member instances' projections under a bijection of their slices'
  /// relevant addresses: `relevant` arrives in corresponding order on both
  /// sides and `token` renders corresponding addresses identically, so the
  /// projections compare equal exactly when the two instances emit
  /// logically identical axioms up to that bijection.
  ///
  /// Derived from config_relations(): addr cells render through `token`,
  /// prefix cells project onto their relevant members, pair tables onto
  /// their admitted-pair matrix - a raw-bits leak is impossible by
  /// construction, because the renderer never sees address bits, only the
  /// descriptor and `token`. Final by design, same as policy_fingerprint.
  [[nodiscard]] std::string encoding_projection(
      const std::vector<Address>& relevant,
      const std::function<std::string(Address)>& token) const {
    return render_projection(config_relations(), relevant, token);
  }

  // -- concrete semantics (simulator) ---------------------------------------
  /// Clears all mutable state (also invoked when the instance fails).
  virtual void sim_reset() = 0;
  /// Processes a received packet; returns the packets to emit.
  [[nodiscard]] virtual std::vector<Packet> sim_process(const Packet& p) = 0;

 protected:
  /// Emits the standard send axiom shared by every model:
  ///
  ///   forall n, p at all times:  snd(self, n, p) =>
  ///       n = Omega  and  (up-and-allowed  or  fail-open-passthrough)
  ///
  /// where up-and-allowed = not fail(self) and condition(p), and the
  /// fail-open disjunct (emitted only for fail-open instances) forwards
  /// previously received packets unmodified while down.
  void emit_send_axiom(
      AxiomContext& ctx,
      const std::function<logic::ltl::FormulaPtr(const logic::TermPtr& p)>&
          condition) const;

  /// Formula: this instance received exactly packet `p` earlier
  /// (from any node).
  [[nodiscard]] logic::ltl::FormulaPtr received_before(
      AxiomContext& ctx, const logic::TermPtr& p) const;

 private:
  std::string name_;
  NodeId node_;
};

}  // namespace vmn::mbox
