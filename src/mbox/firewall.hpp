// Learning (stateful) firewall - the paper's Listing 1.
//
//   @FailClosed
//   class LearningFirewall(acl: Set[(Address, Address)]) {
//     val established: Set[Flow]
//     def model(p: Packet) = {
//       when established.contains(flow(p)) => forward(Seq(p))
//       when acl.contains((p.src, p.dest)) => established += flow(p)
//                                             forward(Seq(p))
//       _ => forward(Seq.empty)
//     }
//   }
//
// Generalized the way real firewalls (and the paper's evaluation) need it:
// the ACL is an ordered list of allow/deny entries over prefix pairs with
// first-match semantics and a configurable default action. Section 5.1
// "adds firewall rules to *prevent* hosts in one group from communicating
// with hosts in any other group" and then *deletes* some of them - i.e.
// deny entries in front of a default-allow tail. Admitted packets establish
// their flow; packets of established flows pass in both directions
// (hole punching). Flow-parallel and fail-closed; `established` is lost
// when the instance fails, which the axioms capture with once_since_up.
#pragma once

#include <unordered_set>

#include "mbox/middlebox.hpp"

namespace vmn::mbox {

enum class AclAction : std::uint8_t { allow, deny };

/// One ordered entry: packets with source in `src` and destination in `dst`
/// match; the first matching entry decides.
struct AclEntry {
  Prefix src;
  Prefix dst;
  AclAction action = AclAction::allow;
};

class LearningFirewall final : public Middlebox {
 public:
  LearningFirewall(std::string name, std::vector<AclEntry> acl,
                   AclAction default_action = AclAction::deny)
      : Middlebox(std::move(name)),
        acl_(std::move(acl)),
        default_action_(default_action) {}

  [[nodiscard]] std::string type() const override { return "firewall"; }
  [[nodiscard]] StateScope state_scope() const override {
    return StateScope::flow_parallel;
  }
  [[nodiscard]] FailureMode failure_mode() const override {
    return FailureMode::fail_closed;
  }

  void emit_axioms(AxiomContext& ctx) const override;

  void sim_reset() override { established_.clear(); }
  [[nodiscard]] std::vector<Packet> sim_process(const Packet& p) override;

  /// Whether the configuration admits src -> dst (concrete semantics;
  /// shared by the axioms through per-address-pair projection).
  [[nodiscard]] bool allows(Address src, Address dst) const;

  [[nodiscard]] const std::vector<AclEntry>& acl() const { return acl_; }
  [[nodiscard]] AclAction default_action() const { return default_action_; }
  /// Removes entry at `index` (misconfiguration injection in scenarios).
  void remove_entry(std::size_t index);
  /// Replaces the whole ACL (used by generators that accumulate rules).
  void replace_acl(std::vector<AclEntry> acl) { acl_ = std::move(acl); }

  /// The ACL as one pair_match relation: rows of [src prefix, dst prefix,
  /// allow flag] plus the default action. The axioms compile it only
  /// through the allows() matrix over relevant address pairs (acl_term), so
  /// the derived projection is that matrix.
  [[nodiscard]] ConfigRelations config_relations() const override;

 private:
  /// Disjunction over relevant address pairs admitted by the ACL, applied
  /// to symbolic source/destination terms.
  [[nodiscard]] logic::TermPtr acl_term(AxiomContext& ctx,
                                        const logic::TermPtr& src,
                                        const logic::TermPtr& dst) const;

  std::vector<AclEntry> acl_;
  AclAction default_action_;
  std::unordered_set<FlowKey> established_;
};

}  // namespace vmn::mbox
