// Discrete-event simulator.
//
// Executes the *concrete* semantics of a NetworkModel: packets injected at
// hosts travel through the per-scenario transfer function, middleboxes
// process them with their sim_process() implementations, and every
// send/receive is recorded as a timestamped event. The simulator plays the
// role of a testing tool (the paper contrasts VMN with Buzz): any violation
// it can concretely realize must also be reported by the verifier, which is
// the agreement property the test suite checks.
#pragma once

#include <deque>
#include <functional>

#include "core/trace.hpp"
#include "encode/model.hpp"

namespace vmn::sim {

class Simulator {
 public:
  /// The simulator mutates middlebox state; it resets all instances on
  /// construction. Failed (fail-closed) middleboxes drop, fail-open ones
  /// pass through, per the scenario.
  Simulator(encode::NetworkModel& model,
            ScenarioId scenario = net::Network::base_scenario);

  /// Injects `p` at `host` and processes the network to quiescence.
  void inject(NodeId host, const Packet& p);

  /// All events so far, in order.
  [[nodiscard]] const Trace& trace() const { return trace_; }

  /// Packets delivered to `node` so far.
  [[nodiscard]] const std::vector<Packet>& delivered(NodeId node) const;

  /// Convenience: whether any delivered packet at `node` satisfies `pred`.
  [[nodiscard]] bool received(
      NodeId node, const std::function<bool(const Packet&)>& pred) const;

  [[nodiscard]] std::int64_t now() const { return now_; }

 private:
  void process(NodeId from_edge, const Packet& p);

  encode::NetworkModel* model_;
  ScenarioId scenario_;
  Trace trace_;
  std::int64_t now_ = 0;
  std::unordered_map<NodeId, std::vector<Packet>> deliveries_;
  /// Guards against infinite middlebox ping-pong in one injection.
  std::size_t hop_budget_ = 0;
};

}  // namespace vmn::sim
