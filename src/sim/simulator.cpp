#include "sim/simulator.hpp"

#include "dataplane/transfer.hpp"

namespace vmn::sim {

Simulator::Simulator(encode::NetworkModel& model, ScenarioId scenario)
    : model_(&model), scenario_(scenario) {
  for (const auto& box : model.middleboxes()) box->sim_reset();
}

void Simulator::inject(NodeId host, const Packet& p) {
  if (model_->network().kind(host) != net::NodeKind::host) {
    throw ModelError("packets are injected at hosts");
  }
  hop_budget_ = 4 * model_->network().node_count() + 16;
  process(host, p);
}

const std::vector<Packet>& Simulator::delivered(NodeId node) const {
  static const std::vector<Packet> none;
  auto it = deliveries_.find(node);
  return it == deliveries_.end() ? none : it->second;
}

bool Simulator::received(
    NodeId node, const std::function<bool(const Packet&)>& pred) const {
  for (const Packet& p : delivered(node)) {
    if (pred(p)) return true;
  }
  return false;
}

void Simulator::process(NodeId from_edge, const Packet& p) {
  if (hop_budget_ == 0) {
    throw ForwardingLoopError("simulator hop budget exhausted (likely a "
                              "middlebox forwarding loop)");
  }
  --hop_budget_;

  const net::Network& net = model_->network();
  dataplane::TransferFunction tf(net, scenario_);
  auto target = tf.next_edge(from_edge, p.dst);

  trace_.add(Event{EventKind::send, now_++, from_edge, NodeId{}, p});
  if (!target) return;  // dropped in the fabric
  trace_.add(Event{EventKind::receive, now_++, from_edge, *target, p});

  if (net.kind(*target) == net::NodeKind::host) {
    deliveries_[*target].push_back(p);
    return;
  }

  mbox::Middlebox* box = model_->middlebox_at(*target);
  if (box == nullptr) return;

  std::vector<Packet> out;
  if (net.is_failed(*target, scenario_)) {
    if (box->failure_mode() == mbox::FailureMode::fail_open) {
      out.push_back(p);  // degenerates to a wire
    }
    // fail-closed: drop.
  } else {
    out = box->sim_process(p);
  }
  for (const Packet& q : out) process(*target, q);
}

}  // namespace vmn::sim
