#include "sim/replay.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace vmn::sim {

namespace {

/// Receive events at `node` in trace order (the simulator records every
/// per-hop delivery, middleboxes included).
bool any_receive(const Trace& trace, NodeId node,
                 const std::function<bool(const Packet&)>& pred) {
  for (const Event& e : trace.events()) {
    if (e.kind == EventKind::receive && e.to == node && pred(e.packet)) {
      return true;
    }
  }
  return false;
}

bool violates_flow_isolation(const Trace& trace, NodeId target,
                             Address peer) {
  // rcv(target, p) with src(p) = peer and no earlier snd by target of the
  // reversed-port flow back to peer (the hole-punching exemption).
  const auto& events = trace.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (e.kind != EventKind::receive || e.to != target ||
        e.packet.src != peer) {
      continue;
    }
    bool punched = false;
    for (std::size_t j = 0; j < i; ++j) {
      const Event& s = events[j];
      if (s.kind == EventKind::send && s.from == target &&
          s.packet.dst == peer && s.packet.src_port == e.packet.dst_port &&
          s.packet.dst_port == e.packet.src_port) {
        punched = true;
        break;
      }
    }
    if (!punched) return true;
  }
  return false;
}

bool violates_traversal(const Trace& trace, const encode::NetworkModel& model,
                        const encode::Invariant& inv) {
  const net::Network& net = model.network();
  const auto& events = trace.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (e.kind != EventKind::receive || e.to != inv.target) continue;
    if (inv.other.valid() &&
        e.packet.src != net.node(inv.other).address) {
      continue;
    }
    bool traversed = false;
    for (std::size_t j = 0; j < i; ++j) {
      const Event& m = events[j];
      if (m.kind != EventKind::receive ||
          model.middlebox_at(m.to) == nullptr) {
        continue;
      }
      if (net.name(m.to).starts_with(inv.type_prefix) &&
          m.packet == e.packet) {
        traversed = true;
        break;
      }
    }
    if (!traversed) return true;
  }
  return false;
}

}  // namespace

bool trace_violates(const Trace& trace, const encode::NetworkModel& model,
                    const encode::Invariant& inv) {
  const net::Network& net = model.network();
  const Address peer =
      inv.other.valid() ? net.node(inv.other).address : Address{};
  switch (inv.kind) {
    case encode::InvariantKind::node_isolation:
      return any_receive(trace, inv.target,
                         [&](const Packet& p) { return p.src == peer; });
    case encode::InvariantKind::flow_isolation:
      return violates_flow_isolation(trace, inv.target, peer);
    case encode::InvariantKind::data_isolation:
      return any_receive(trace, inv.target, [&](const Packet& p) {
        return p.origin && *p.origin == peer;
      });
    case encode::InvariantKind::no_malicious_delivery:
      return any_receive(trace, inv.target,
                         [](const Packet& p) { return p.malicious; });
    case encode::InvariantKind::traversal:
      return violates_traversal(trace, model, inv);
    case encode::InvariantKind::reachable:
      // Existential: "violating" the negation means the delivery exists.
      // Replay uses this to confirm a `holds` (= reachable) witness.
      return any_receive(trace, inv.target,
                         [&](const Packet& p) { return p.src == peer; });
  }
  return false;
}

bool replay_is_strict(const encode::NetworkModel& model) {
  static const std::set<std::string> kExact = {
      "firewall", "idps", "scrubber", "gateway", "app-firewall"};
  for (const auto& box : model.middleboxes()) {
    if (!kExact.contains(box->type())) return false;
  }
  return true;
}

namespace {

/// Invariant-derived probe injections: canonical attack packets that
/// realize the violation whenever the concrete datapath admits one, even
/// when the witness's exact interleaving does not replay verbatim. Every
/// probe is a legal host send (src = own address, origin unset or own), so
/// a probe-realized violation is as genuine as a witness-realized one.
std::vector<std::pair<NodeId, Packet>> probe_injections(
    const encode::NetworkModel& model, const encode::Invariant& inv) {
  const net::Network& net = model.network();
  std::vector<std::pair<NodeId, Packet>> probes;
  const Address dst = net.node(inv.target).address;
  switch (inv.kind) {
    case encode::InvariantKind::node_isolation:
    case encode::InvariantKind::flow_isolation:
    case encode::InvariantKind::reachable: {
      probes.emplace_back(inv.other,
                          Packet{net.node(inv.other).address, dst, 1009, 80});
      break;
    }
    case encode::InvariantKind::data_isolation: {
      // Request / provenance-carrying response / re-request: the ordering a
      // content cache needs to cache and then serve the data.
      const Address srv = net.node(inv.other).address;
      probes.emplace_back(inv.target, Packet{dst, srv, 1013, 80});
      Packet resp{srv, dst, 80, 1013};
      resp.origin = srv;
      probes.emplace_back(inv.other, resp);
      probes.emplace_back(inv.target, Packet{dst, srv, 1013, 80});
      break;
    }
    case encode::InvariantKind::no_malicious_delivery: {
      for (NodeId h : net.hosts()) {
        if (h == inv.target) continue;
        Packet bad{net.node(h).address, dst, 1021, 80};
        bad.malicious = true;
        probes.emplace_back(h, bad);
      }
      break;
    }
    case encode::InvariantKind::traversal: {
      if (inv.other.valid()) {
        probes.emplace_back(inv.other,
                            Packet{net.node(inv.other).address, dst, 1031, 80});
      } else {
        for (NodeId h : net.hosts()) {
          if (h == inv.target) continue;
          probes.emplace_back(h, Packet{net.node(h).address, dst, 1031, 80});
        }
      }
      break;
    }
  }
  return probes;
}

}  // namespace

ReplayResult replay_witness(encode::NetworkModel& model,
                            const encode::Invariant& inv,
                            const Trace& witness, int max_failures) {
  const net::Network& net = model.network();

  // The witness's free choices: host-originated sends, in time order.
  std::vector<Event> sends;
  std::set<NodeId> witness_failed;
  for (const Event& e : witness.events()) {
    if (e.kind == EventKind::send && e.from.valid() &&
        net.kind(e.from) == net::NodeKind::host) {
      sends.push_back(e);
    } else if (e.kind == EventKind::fail && e.from.valid()) {
      witness_failed.insert(e.from);
    }
  }
  std::stable_sort(sends.begin(), sends.end(),
                   [](const Event& a, const Event& b) { return a.time < b.time; });

  // Candidate scenarios: exact fail-set match first, then every other
  // in-budget scenario (the encoder admits scenarios by budget, and the
  // SMT model does not expose which one it chose).
  std::vector<ScenarioId> candidates;
  const auto& scenarios = net.scenarios();
  for (std::size_t pass = 0; pass < 2; ++pass) {
    for (std::size_t si = 0; si < scenarios.size(); ++si) {
      if (static_cast<int>(scenarios[si].failed_nodes.size()) > max_failures) {
        continue;
      }
      std::set<NodeId> failed(scenarios[si].failed_nodes.begin(),
                              scenarios[si].failed_nodes.end());
      const bool exact = failed == witness_failed;
      if ((pass == 0) == exact) {
        candidates.push_back(
            ScenarioId{static_cast<ScenarioId::underlying_type>(si)});
      }
    }
  }

  const auto probes = probe_injections(model, inv);
  ReplayResult result;
  for (ScenarioId sid : candidates) {
    Simulator sim(model, sid);
    std::size_t injected = 0;
    auto inject = [&](NodeId from, const Packet& p) {
      try {
        sim.inject(from, p);
        ++injected;
      } catch (const ForwardingLoopError&) {
        // A looping injection proves nothing either way; keep going.
      }
    };
    // Witness pass, probe battery, then the witness again: stateful paths
    // (flow establishment, cache fills) may need the probe-created state
    // before the witness's final delivery can happen concretely.
    for (const Event& e : sends) inject(e.from, e.packet);
    for (const auto& [from, p] : probes) inject(from, p);
    for (const Event& e : sends) inject(e.from, e.packet);
    result.injections = injected;
    if (trace_violates(sim.trace(), model, inv)) {
      result.realized = true;
      result.scenario = sid;
      return result;
    }
  }
  return result;
}

}  // namespace vmn::sim
