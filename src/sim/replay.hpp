// Concrete witness replay: run a verifier counterexample through the
// simulator and confirm the forbidden delivery actually occurs.
//
// The verifier's witness is a symbolic schedule; its host `send` events are
// the free choices (hosts send whatever the oracle allows), everything else
// is a consequence of middlebox and datapath semantics. Replay injects
// exactly those host sends, in witness time order, into a Simulator running
// a compatible failure scenario, then adds a small battery of
// invariant-derived probe injections (a second chance for stateful paths
// whose concrete event interleaving differs from the symbolic one - e.g. a
// content cache needs request-before-response ordering). Any concrete
// realization of the violation confirms the `violated` verdict, whichever
// injection produced it.
//
// Strictness: for middlebox types whose sim_process is an exact refinement
// of the symbolic model with no havoced choices (firewall, IDPS, scrubber,
// gateway, app-firewall), a violated verdict that cannot be realized is an
// oracle failure. Types with symbolic nondeterminism the simulator resolves
// one way (NAT port choice, load-balancer backend choice, proxy requester
// choice, cache service choice, WAN-optimizer port havoc) make replay
// advisory: non-realization is recorded, not flagged.
#pragma once

#include "core/trace.hpp"
#include "encode/invariant.hpp"
#include "sim/simulator.hpp"

namespace vmn::sim {

/// Whether the simulated history violates `inv` - the concrete counterpart
/// of the encoder's invariant axioms, event-order sensitive where the
/// symbolic semantics is (flow isolation's prior-reverse-send, traversal's
/// prior middlebox receive).
[[nodiscard]] bool trace_violates(const Trace& trace,
                                  const encode::NetworkModel& model,
                                  const encode::Invariant& inv);

/// Whether every middlebox in `model` has deterministic concrete semantics,
/// making witness replay a strict oracle (see file comment).
[[nodiscard]] bool replay_is_strict(const encode::NetworkModel& model);

struct ReplayResult {
  /// The violation (for `reachable`: the delivery) was realized concretely.
  bool realized = false;
  /// Scenario in which it was realized (meaningful when realized).
  ScenarioId scenario;
  /// Host-send injections performed in the realizing (or last) attempt.
  std::size_t injections = 0;
};

/// Replays `witness` for `inv` against `model`. Tries the failure scenario
/// whose failed-node set matches the witness's fail events first, then
/// every other scenario within `max_failures`; realization in any of them
/// confirms the verdict (the encoder, too, picks the scenario
/// existentially). The model's middlebox state is reset per attempt.
[[nodiscard]] ReplayResult replay_witness(encode::NetworkModel& model,
                                          const encode::Invariant& inv,
                                          const Trace& witness,
                                          int max_failures);

}  // namespace vmn::sim
