#include "smt/model.hpp"

// SmtModel is a plain aggregate; this translation unit exists so the module
// has a stable archive member and room for future helpers.
namespace vmn::smt {}
