#include "smt/solver.hpp"

namespace vmn::smt {

std::string to_string(CheckStatus status) {
  switch (status) {
    case CheckStatus::sat:
      return "sat";
    case CheckStatus::unsat:
      return "unsat";
    case CheckStatus::unknown:
      return "unknown";
  }
  return "?";
}

}  // namespace vmn::smt
