// Backend-independent view of a satisfying model: the concrete events and
// packets witnessing an invariant violation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/event.hpp"

namespace vmn::smt {

/// A packet as valued by the solver. Field values are raw integers; the
/// verifier maps them back to addresses/hosts.
struct ModelPacket {
  std::string label;  ///< solver-internal packet name (e.g. "Packet!val!0")
  std::int64_t src = 0;
  std::int64_t dst = 0;
  std::int64_t src_port = 0;
  std::int64_t dst_port = 0;
  std::optional<std::int64_t> origin;
  bool malicious = false;
  std::int64_t app_class = 0;
};

/// One event atom valued true in the model. Node fields are indices into
/// the Node enumeration sort; packet is an index into SmtModel::packets.
struct ModelEvent {
  EventKind kind = EventKind::send;
  std::size_t from = 0;
  std::size_t to = 0;
  std::size_t packet = 0;  ///< unused for fail events
  std::int64_t time = 0;
};

/// The extracted model. `complete` is false when the backend could not
/// enumerate all events (e.g. a function interpreted as `true` by default);
/// the events present are still valid.
struct SmtModel {
  std::vector<ModelPacket> packets;
  std::vector<ModelEvent> events;
  bool complete = true;
};

}  // namespace vmn::smt
