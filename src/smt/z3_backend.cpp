// Z3 backend: translates the logic IR into z3::expr and extracts event
// traces from satisfying models.
#include <z3++.h>

#include <chrono>
#include <functional>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/error.hpp"
#include "smt/model.hpp"
#include "smt/solver.hpp"

namespace vmn::smt {

namespace {

using logic::FuncDecl;
using logic::FuncDeclPtr;
using logic::Sort;
using logic::SortPtr;
using logic::Term;
using logic::TermKind;
using logic::TermPtr;

class Z3Solver final : public Solver {
 public:
  Z3Solver(const logic::Vocab& vocab, SolverOptions options)
      : vocab_(&vocab), options_(options), solver_(ctx_) {
    z3::params p(ctx_);
    p.set("timeout", options_.timeout_ms);
    if (options_.seed != 0) {
      p.set("random_seed", options_.seed);
    }
    solver_.set(p);
  }

  void add(const TermPtr& axiom) override {
    if (!axiom->is_bool()) {
      throw SolverError("assertions must be boolean terms");
    }
    solver_.add(translate(axiom));
    ++assertions_;
  }

  void push() override {
    solver_.push();
    assertion_stack_.push_back(assertions_);
  }

  void pop() override {
    if (assertion_stack_.empty()) {
      throw SolverError("pop without a matching push");
    }
    solver_.pop();
    assertions_ = assertion_stack_.back();
    assertion_stack_.pop_back();
    have_model_ = false;  // the model belonged to the popped scope
  }

  CheckStatus check() override {
    const auto start = std::chrono::steady_clock::now();
    z3::check_result r = solver_.check();
    last_time_ = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    switch (r) {
      case z3::sat:
        have_model_ = true;
        return CheckStatus::sat;
      case z3::unsat:
        have_model_ = false;
        return CheckStatus::unsat;
      default:
        have_model_ = false;
        return CheckStatus::unknown;
    }
  }

  [[nodiscard]] SmtModel model() const override {
    if (!have_model_) {
      throw SolverError("model() requires a prior sat result");
    }
    z3::model m = solver_.get_model();
    SmtModel out;
    const std::vector<z3::expr> packets = packet_universe(m);
    for (const z3::expr& p : packets) {
      ModelPacket mp;
      mp.label = p.to_string();
      out.packets.push_back(std::move(mp));
    }
    fill_packet_fields(m, packets, out);

    // Fast path: one pass over the model's function interpretations,
    // collecting exactly the entries valued true. This avoids the dense
    // |Node|^2 x |Packet| x |times| m.eval probe grid whenever Z3 reports
    // snd/rcv/fail as finite entry lists over a `false` default - the
    // common shape for the finite-model instances VMN produces. When any
    // interpretation is formula-shaped (quantified models may substitute a
    // body instead of enumerating entries, or default to non-false), the
    // events gathered so far are discarded and the dense probe runs, so
    // the fast path can only ever be a pure win, never a behavior change.
    if (!collect_events_from_interps(m, packets, out)) {
      out.events.clear();
      probe_events_dense(m, packets, out);
    }
    return out;
  }

  [[nodiscard]] std::chrono::milliseconds last_check_time() const override {
    return last_time_;
  }

  [[nodiscard]] std::size_t assertion_count() const override {
    return assertions_;
  }

 private:
  // -- sort / declaration translation --------------------------------------
  z3::sort z3_sort(const SortPtr& s) {
    switch (s->kind()) {
      case Sort::Kind::boolean:
        return ctx_.bool_sort();
      case Sort::Kind::integer:
        return ctx_.int_sort();
      case Sort::Kind::uninterpreted: {
        auto it = usorts_.find(s->name());
        if (it != usorts_.end()) return it->second;
        z3::sort zs = ctx_.uninterpreted_sort(s->name().c_str());
        usorts_.emplace(s->name(), zs);
        return zs;
      }
      case Sort::Kind::finite: {
        auto it = esorts_.find(s->name());
        if (it != esorts_.end()) return it->second.sort;
        std::vector<const char*> names;
        names.reserve(s->size());
        for (const auto& e : s->elements()) names.push_back(e.c_str());
        EnumSort es{ctx_, z3::func_decl_vector(ctx_),
                    z3::func_decl_vector(ctx_)};
        es.sort = ctx_.enumeration_sort(s->name().c_str(),
                                        static_cast<unsigned>(names.size()),
                                        names.data(), es.consts, es.testers);
        auto [pos, _] = esorts_.emplace(s->name(), std::move(es));
        return pos->second.sort;
      }
    }
    throw SolverError("unknown sort kind");
  }

  z3::func_decl z3_func(const FuncDeclPtr& f) {
    auto it = funcs_.find(f.get());
    if (it != funcs_.end()) return it->second;
    z3::sort_vector domain(ctx_);
    for (const auto& d : f->domain()) domain.push_back(z3_sort(d));
    z3::func_decl zf = ctx_.function(f->name().c_str(), domain,
                                     z3_sort(f->range()));
    funcs_.emplace(f.get(), zf);
    return zf;
  }

  z3::expr enum_const(const SortPtr& s, std::size_t index) {
    z3_sort(s);  // ensure interned
    return esorts_.at(s->name()).consts[static_cast<unsigned>(index)]();
  }

  // -- term translation -----------------------------------------------------
  z3::expr translate(const TermPtr& t) {
    auto it = cache_.find(t->id());
    if (it != cache_.end()) return it->second;
    z3::expr e = translate_uncached(t);
    cache_.emplace(t->id(), e);
    return e;
  }

  z3::expr translate_uncached(const TermPtr& t) {
    switch (t->kind()) {
      case TermKind::bool_const:
        return ctx_.bool_val(t->bool_value());
      case TermKind::int_const:
        return ctx_.int_val(static_cast<std::int64_t>(t->int_value()));
      case TermKind::enum_const:
        return enum_const(t->sort(), t->enum_index());
      case TermKind::variable:
        return ctx_.constant(t->var_name().c_str(), z3_sort(t->sort()));
      case TermKind::app: {
        z3::expr_vector args(ctx_);
        for (const auto& c : t->children()) args.push_back(translate(c));
        return z3_func(t->decl())(args);
      }
      case TermKind::not_op:
        return !translate(t->children()[0]);
      case TermKind::and_op: {
        z3::expr_vector args(ctx_);
        for (const auto& c : t->children()) args.push_back(translate(c));
        return z3::mk_and(args);
      }
      case TermKind::or_op: {
        z3::expr_vector args(ctx_);
        for (const auto& c : t->children()) args.push_back(translate(c));
        return z3::mk_or(args);
      }
      case TermKind::implies_op:
        return z3::implies(translate(t->children()[0]),
                           translate(t->children()[1]));
      case TermKind::iff_op:
        return translate(t->children()[0]) == translate(t->children()[1]);
      case TermKind::ite_op:
        return z3::ite(translate(t->children()[0]), translate(t->children()[1]),
                       translate(t->children()[2]));
      case TermKind::eq_op:
        return translate(t->children()[0]) == translate(t->children()[1]);
      case TermKind::distinct_op: {
        z3::expr_vector args(ctx_);
        for (const auto& c : t->children()) args.push_back(translate(c));
        return z3::distinct(args);
      }
      case TermKind::lt_op:
        return translate(t->children()[0]) < translate(t->children()[1]);
      case TermKind::le_op:
        return translate(t->children()[0]) <= translate(t->children()[1]);
      case TermKind::add_op:
        return translate(t->children()[0]) + translate(t->children()[1]);
      case TermKind::sub_op:
        return translate(t->children()[0]) - translate(t->children()[1]);
      case TermKind::forall_op:
      case TermKind::exists_op: {
        z3::expr_vector vars(ctx_);
        for (const auto& v : t->binders()) vars.push_back(translate(v));
        z3::expr body = translate(t->children()[0]);
        return t->kind() == TermKind::forall_op ? z3::forall(vars, body)
                                                : z3::exists(vars, body);
      }
    }
    throw SolverError("unknown term kind");
  }

  // -- model extraction ------------------------------------------------------
  z3::expr node_expr(std::size_t index) const {
    return esorts_.at(vocab_->node_sort()->name())
        .consts[static_cast<unsigned>(index)]();
  }

  /// Harvests true snd/rcv/fail atoms directly from the model's function
  /// interpretations (entry lists). Returns false - leaving a possibly
  /// partial out.events for the caller to discard - when any relevant
  /// interpretation is not a plain entries-over-false table, or any entry
  /// argument fails to decode to a node constant / universe packet /
  /// integer time; the dense probe is the correctness fallback.
  bool collect_events_from_interps(const z3::model& m,
                                   const std::vector<z3::expr>& packets,
                                   SmtModel& out) const {
    // Decode tables: Z3 hash-conses ASTs, so an entry argument that denotes
    // node i is pointer-identical (same ast id) to our constructor app.
    std::unordered_map<unsigned, std::size_t> node_of;
    const std::size_t node_count = vocab_->node_sort()->size();
    for (std::size_t i = 0; i < node_count; ++i) {
      node_of.emplace(node_expr(i).id(), i);
    }
    std::unordered_map<unsigned, std::size_t> packet_of;
    for (std::size_t i = 0; i < packets.size(); ++i) {
      packet_of.emplace(packets[i].id(), i);
    }

    const auto decode = [](const std::unordered_map<unsigned, std::size_t>& map,
                           const z3::expr& e, std::size_t& index) {
      auto it = map.find(e.id());
      if (it == map.end()) return false;
      index = it->second;
      return true;
    };

    // kind: send/receive for the 4-ary event relations, fail for the 2-ary
    // failure relation (from == to == the failed node there).
    const auto harvest = [&](const FuncDeclPtr& f, EventKind kind) -> bool {
      auto it = funcs_.find(f.get());
      if (it == funcs_.end()) return true;  // never translated: no atoms
      try {
        if (!m.has_interp(it->second)) return true;  // completion -> false
        z3::func_interp fi = m.get_func_interp(it->second);
        z3::expr els = fi.else_value();
        if (!els.is_false()) return false;  // non-false default: probe
        for (unsigned j = 0; j < fi.num_entries(); ++j) {
          z3::func_entry entry = fi.entry(j);
          z3::expr value = entry.value();
          if (value.is_false()) continue;
          if (!value.is_true()) return false;  // symbolic value: probe
          ModelEvent ev;
          ev.kind = kind;
          std::int64_t t = 0;
          if (kind == EventKind::fail) {
            if (entry.num_args() != 2) return false;
            if (!decode(node_of, entry.arg(0), ev.from)) return false;
            if (!entry.arg(1).is_numeral_i64(t)) return false;
            ev.to = ev.from;
          } else {
            if (entry.num_args() != 4) return false;
            if (!decode(node_of, entry.arg(0), ev.from)) return false;
            if (!decode(node_of, entry.arg(1), ev.to)) return false;
            if (!decode(packet_of, entry.arg(2), ev.packet)) return false;
            if (!entry.arg(3).is_numeral_i64(t)) return false;
          }
          ev.time = t;
          out.events.push_back(ev);
        }
        return true;
      } catch (const z3::exception&) {
        return false;  // partial interp (null else etc.): probe instead
      }
    };

    return harvest(vocab_->snd(), EventKind::send) &&
           harvest(vocab_->rcv(), EventKind::receive) &&
           harvest(vocab_->fail(), EventKind::fail);
  }

  /// The exhaustive fallback: enumerate ground atoms - all node pairs, the
  /// Packet universe, and candidate times harvested from the model itself -
  /// and m.eval each (quantified models may interpret snd/rcv as formula
  /// bodies rather than entry lists, which only evaluation can read).
  void probe_events_dense(const z3::model& m,
                          const std::vector<z3::expr>& packets,
                          SmtModel& out) const {
    const std::vector<std::int64_t> times = candidate_times(m);
    const std::size_t node_count = vocab_->node_sort()->size();

    auto snd_it = funcs_.find(vocab_->snd().get());
    auto rcv_it = funcs_.find(vocab_->rcv().get());
    for (std::size_t from = 0; from < node_count; ++from) {
      for (std::size_t to = 0; to < node_count; ++to) {
        for (std::size_t pi = 0; pi < packets.size(); ++pi) {
          for (std::int64_t t : times) {
            auto probe = [&](EventKind kind,
                             const z3::func_decl& decl) {
              z3::expr atom =
                  decl(node_expr(from), node_expr(to), packets[pi],
                       ctx_.int_val(static_cast<std::int64_t>(t)));
              if (m.eval(atom, true).is_true()) {
                out.events.push_back(ModelEvent{kind, from, to, pi, t});
              }
            };
            if (snd_it != funcs_.end()) probe(EventKind::send, snd_it->second);
            if (rcv_it != funcs_.end()) {
              probe(EventKind::receive, rcv_it->second);
            }
          }
        }
      }
    }
    auto fail_it = funcs_.find(vocab_->fail().get());
    if (fail_it != funcs_.end()) {
      for (std::size_t n = 0; n < node_count; ++n) {
        for (std::int64_t t : times) {
          z3::expr atom = fail_it->second(
              node_expr(n), ctx_.int_val(static_cast<std::int64_t>(t)));
          if (m.eval(atom, true).is_true()) {
            out.events.push_back(ModelEvent{EventKind::fail, n, n, 0, t});
            break;  // one fail event per node is enough for the trace
          }
        }
      }
    }
  }

  /// Elements of the (finite-in-the-model) Packet universe. Uses the C API:
  /// the z3::model wrapper in this Z3 version does not expose universes.
  std::vector<z3::expr> packet_universe(const z3::model& m) const {
    std::vector<z3::expr> out;
    auto it = usorts_.find(vocab_->packet_sort()->name());
    if (it == usorts_.end()) return out;
    const unsigned n = Z3_model_get_num_sorts(ctx_, m);
    for (unsigned i = 0; i < n; ++i) {
      z3::sort s(ctx_, Z3_model_get_sort(ctx_, m, i));
      if (z3::eq(s, it->second)) {
        z3::expr_vector univ(ctx_, Z3_model_get_sort_universe(ctx_, m, s));
        for (unsigned j = 0; j < univ.size(); ++j) out.push_back(univ[j]);
        return out;
      }
    }
    return out;
  }

  /// Integer numerals mentioned anywhere in the model's function bodies and
  /// constant values - the only times at which events can be true.
  std::vector<std::int64_t> candidate_times(const z3::model& m) const {
    std::set<std::int64_t> times;
    times.insert(0);
    std::set<unsigned> seen;
    std::function<void(const z3::expr&)> walk = [&](const z3::expr& e) {
      if (!seen.insert(e.id()).second) return;
      if (e.is_numeral() && e.is_int()) {
        std::int64_t v = 0;
        if (e.is_numeral_i64(v) && v >= 0 && v < (1 << 20)) times.insert(v);
      }
      if (e.is_app()) {
        for (unsigned i = 0; i < e.num_args(); ++i) walk(e.arg(i));
      }
    };
    for (unsigned i = 0; i < m.num_consts(); ++i) {
      walk(m.get_const_interp(m.get_const_decl(i)));
    }
    for (unsigned i = 0; i < m.num_funcs(); ++i) {
      z3::func_interp fi = m.get_func_interp(m.get_func_decl(i));
      walk(fi.else_value());
      for (unsigned j = 0; j < fi.num_entries(); ++j) {
        z3::func_entry entry = fi.entry(j);
        walk(entry.value());
        for (unsigned k = 0; k < entry.num_args(); ++k) walk(entry.arg(k));
      }
    }
    return {times.begin(), times.end()};
  }

  void fill_packet_fields(const z3::model& m,
                          const std::vector<z3::expr>& packets,
                          SmtModel& out) const {
    auto eval_int = [&](const FuncDeclPtr& f, const z3::expr& p) {
      auto it = funcs_.find(f.get());
      if (it == funcs_.end()) return std::int64_t{0};
      z3::expr v = m.eval(it->second(p), /*model_completion=*/true);
      std::int64_t value = 0;
      if (v.is_numeral()) (void)v.is_numeral_i64(value);
      return value;
    };
    auto eval_bool = [&](const FuncDeclPtr& f, const z3::expr& p) {
      auto it = funcs_.find(f.get());
      if (it == funcs_.end()) return false;
      return m.eval(it->second(p), true).is_true();
    };
    for (std::size_t i = 0; i < packets.size(); ++i) {
      const z3::expr& p = packets[i];
      ModelPacket& mp = out.packets[i];
      mp.src = eval_int(vocab_->src(), p);
      mp.dst = eval_int(vocab_->dst(), p);
      mp.src_port = eval_int(vocab_->src_port(), p);
      mp.dst_port = eval_int(vocab_->dst_port(), p);
      mp.origin = eval_int(vocab_->origin(), p);
      mp.malicious = eval_bool(vocab_->malicious(), p);
      mp.app_class = eval_int(vocab_->app_class(), p);
    }
  }

  struct EnumSort {
    z3::context& ctx;
    z3::func_decl_vector consts;
    z3::func_decl_vector testers;
    z3::sort sort{ctx};
  };

  const logic::Vocab* vocab_;
  SolverOptions options_;
  /// The Z3 context is internally synchronized state shared by every
  /// expression; model extraction (a const operation) still builds probe
  /// terms through it.
  mutable z3::context ctx_;
  z3::solver solver_;
  std::unordered_map<std::string, z3::sort> usorts_;
  std::unordered_map<std::string, EnumSort> esorts_;
  std::unordered_map<const FuncDecl*, z3::func_decl> funcs_;
  std::unordered_map<std::uint64_t, z3::expr> cache_;
  std::chrono::milliseconds last_time_{0};
  std::size_t assertions_ = 0;
  /// assertion_count() snapshots for the open push() scopes.
  std::vector<std::size_t> assertion_stack_;
  bool have_model_ = false;
};

}  // namespace

std::unique_ptr<Solver> make_z3_solver(const logic::Vocab& vocab,
                                       SolverOptions options) {
  return std::make_unique<Z3Solver>(vocab, options);
}

}  // namespace vmn::smt
