// Solver-backend interface.
//
// VMN asserts the network axioms plus the negated invariant and asks for
// satisfiability (paper, section 3.1): a satisfying assignment is a schedule
// and oracle behavior violating the invariant; unsat proves the invariant
// holds for all schedules and oracle behaviors.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "logic/builder.hpp"
#include "logic/term.hpp"
#include "smt/model.hpp"

namespace vmn::smt {

enum class CheckStatus : std::uint8_t {
  sat,      ///< counterexample found (invariant violated)
  unsat,    ///< no counterexample exists (invariant holds)
  unknown,  ///< solver gave up (timeout / incomplete heuristics)
};

[[nodiscard]] std::string to_string(CheckStatus status);

struct SolverOptions {
  /// Per-check wall-clock budget handed to the backend.
  std::uint32_t timeout_ms = 120000;
  /// Random seed forwarded to the backend (SMT search is randomized;
  /// the paper reports distributions over 100 runs).
  std::uint32_t seed = 0;
};

/// Abstract solver session. Axioms accumulate; check() may be called
/// repeatedly (e.g. after push/pop by future backends).
class Solver {
 public:
  virtual ~Solver() = default;

  /// Asserts a closed boolean term.
  virtual void add(const logic::TermPtr& axiom) = 0;
  /// Runs the satisfiability check.
  virtual CheckStatus check() = 0;
  /// Extracts the event/packet model after a sat result.
  [[nodiscard]] virtual SmtModel model() const = 0;
  /// Time spent inside the last check().
  [[nodiscard]] virtual std::chrono::milliseconds last_check_time() const = 0;
  /// Number of asserted axioms (diagnostics).
  [[nodiscard]] virtual std::size_t assertion_count() const = 0;
};

/// Creates the Z3-backed solver (the only production backend; the paper
/// builds directly on Z3).
[[nodiscard]] std::unique_ptr<Solver> make_z3_solver(const logic::Vocab& vocab,
                                                     SolverOptions options = {});

}  // namespace vmn::smt
