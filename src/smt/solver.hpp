// Solver-backend interface.
//
// VMN asserts the network axioms plus the negated invariant and asks for
// satisfiability (paper, section 3.1): a satisfying assignment is a schedule
// and oracle behavior violating the invariant; unsat proves the invariant
// holds for all schedules and oracle behaviors.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "logic/builder.hpp"
#include "logic/term.hpp"
#include "smt/model.hpp"

namespace vmn::smt {

enum class CheckStatus : std::uint8_t {
  sat,      ///< counterexample found (invariant violated)
  unsat,    ///< no counterexample exists (invariant holds)
  unknown,  ///< solver gave up (timeout / incomplete heuristics)
};

[[nodiscard]] std::string to_string(CheckStatus status);

struct SolverOptions {
  /// Per-check wall-clock budget handed to the backend.
  std::uint32_t timeout_ms = 120000;
  /// Random seed forwarded to the backend (SMT search is randomized;
  /// the paper reports distributions over 100 runs).
  std::uint32_t seed = 0;
};

/// Abstract solver session. Axioms accumulate; check() may be called
/// repeatedly. push()/pop() bracket retractable assertions, which is what
/// the warm verification path builds on: the base network axioms stay
/// asserted at level 0 while each invariant's negation is pushed, checked
/// and popped, so one live context (and its learned state) serves a whole
/// run of jobs sharing a slice shape.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Asserts a closed boolean term.
  virtual void add(const logic::TermPtr& axiom) = 0;
  /// Opens a backtracking scope: assertions added after push() are
  /// retracted by the matching pop().
  virtual void push() = 0;
  /// Closes the innermost scope; assertion_count() reverts with it.
  virtual void pop() = 0;
  /// Runs the satisfiability check.
  virtual CheckStatus check() = 0;
  /// Extracts the event/packet model after a sat result.
  [[nodiscard]] virtual SmtModel model() const = 0;
  /// Time spent inside the last check().
  [[nodiscard]] virtual std::chrono::milliseconds last_check_time() const = 0;
  /// Number of currently asserted axioms (diagnostics).
  [[nodiscard]] virtual std::size_t assertion_count() const = 0;
};

/// Creates the Z3-backed solver (the only production backend; the paper
/// builds directly on Z3).
[[nodiscard]] std::unique_ptr<Solver> make_z3_solver(const logic::Vocab& vocab,
                                                     SolverOptions options = {});

}  // namespace vmn::smt
