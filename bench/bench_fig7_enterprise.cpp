// Figure 7: enterprise network (Fig 6) - per-invariant verification time
// for the three subnet policies (public / private / quarantined), comparing
// slice-based verification (independent of network size) against
// whole-network verification at growing sizes.
//
// The paper plots network sizes 17/47/77 (hosts + middleboxes); subnets are
// swept here to produce a comparable size axis.
#include "bench_common.hpp"
#include "scenarios/enterprise.hpp"

namespace {

using namespace vmn;
using bench::verify_expecting;
using scenarios::Enterprise;
using scenarios::EnterpriseParams;
using verify::Outcome;
using verify::Engine;
using verify::VerifyOptions;

Enterprise make(int subnets) {
  EnterpriseParams p;
  p.subnets = subnets;
  p.hosts_per_subnet = 2;
  return make_enterprise(p);
}

// Invariant index per policy: 0 = public (reachable), 1 = private
// (flow isolation), 2 = quarantined (node isolation).
void run(benchmark::State& state, int invariant_index, bool use_slices) {
  const int subnets = static_cast<int>(state.range(0));
  Enterprise ent = make(subnets);
  VerifyOptions opts;
  opts.use_slices = use_slices;
  Engine v(ent.model, opts);
  const double mean_ms = verify_expecting(
      state, v, ent.invariants[static_cast<std::size_t>(invariant_index)],
      Outcome::holds);
  const double edge_nodes =
      static_cast<double>(encode::all_edge_nodes(ent.model).size());
  state.counters["edge_nodes"] = benchmark::Counter(edge_nodes);
  static const char* const kPolicy[] = {"public", "private", "quarantined"};
  bench::BenchJson::instance().record(
      std::string(kPolicy[invariant_index]) +
          (use_slices ? "/slice" : "/full") +
          "/subnets=" + std::to_string(subnets),
      {{"verify_ms", mean_ms}, {"edge_nodes", edge_nodes}});
}

void BM_Public_Slice(benchmark::State& s) { run(s, 0, true); }
void BM_Private_Slice(benchmark::State& s) { run(s, 1, true); }
void BM_Quarantined_Slice(benchmark::State& s) { run(s, 2, true); }
void BM_Public_Full(benchmark::State& s) { run(s, 0, false); }
void BM_Private_Full(benchmark::State& s) { run(s, 1, false); }
void BM_Quarantined_Full(benchmark::State& s) { run(s, 2, false); }

// Slice time is independent of size: a single size suffices (left of the
// vertical line in the paper's Fig 7), but we sweep anyway to demonstrate.
BENCHMARK(BM_Public_Slice)->Arg(6)->Arg(18)->Arg(30)->ArgNames({"subnets"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Private_Slice)->Arg(6)->Arg(18)->Arg(30)->ArgNames({"subnets"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Quarantined_Slice)->Arg(6)->Arg(18)->Arg(30)
    ->ArgNames({"subnets"})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Public_Full)->Arg(6)->Arg(18)->Arg(30)->ArgNames({"subnets"})
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_Private_Full)->Arg(6)->Arg(18)->Arg(30)->ArgNames({"subnets"})
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_Quarantined_Full)->Arg(6)->Arg(18)->Arg(30)
    ->ArgNames({"subnets"})->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace

VMN_BENCH_JSON_MAIN("bench_fig7_enterprise", "BENCH_fig7.json")
