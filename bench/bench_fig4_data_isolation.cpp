// Figure 4: time to verify ONE data-isolation invariant as a function of
// policy complexity, for both the violated and the holds case (section 5.2:
// storage services with content caches).
//
// Content caches are origin-agnostic, so the slice must contain one
// representative host per policy class - unlike Figs 2/3/7/8/9, the slice
// (and hence verification time) grows with policy complexity. This is the
// paper's motivating example for why minimizing slice size matters.
#include "bench_common.hpp"
#include "core/rng.hpp"
#include "scenarios/datacenter.hpp"

namespace {

using namespace vmn;
using bench::verify_expecting;
using scenarios::Datacenter;
using scenarios::DatacenterParams;
using scenarios::DcMisconfig;
using verify::Outcome;
using verify::Engine;

Datacenter make(int classes) {
  DatacenterParams p;
  p.policy_groups = classes;
  p.clients_per_group = 2;
  p.with_storage = true;
  return make_datacenter(p);
}

void BM_Fig4_Holds(benchmark::State& state) {
  Datacenter dc = make(static_cast<int>(state.range(0)));
  Engine v(dc.model);
  verify_expecting(state, v, dc.data_isolation_invariants()[0],
                   Outcome::holds);
}
BENCHMARK(BM_Fig4_Holds)->Arg(3)->Arg(5)->Arg(8)->Arg(12)
    ->ArgNames({"classes"})->Unit(benchmark::kMillisecond)->Iterations(2);

void BM_Fig4_Violated(benchmark::State& state) {
  Datacenter dc = make(static_cast<int>(state.range(0)));
  Rng rng(21);
  inject_misconfig(dc, DcMisconfig::cache_acl, rng, 1);
  const int g = dc.broken_pairs[0].first;
  Engine v(dc.model);
  verify_expecting(state, v,
                   dc.data_isolation_invariants()[static_cast<std::size_t>(g)],
                   Outcome::violated);
}
BENCHMARK(BM_Fig4_Violated)->Arg(3)->Arg(5)->Arg(8)->Arg(12)
    ->ArgNames({"classes"})->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace
