// Figure 5: time to verify ALL data-isolation invariants in the storage
// datacenter as a function of policy complexity (section 5.2). Because the
// cache is origin-agnostic, per-invariant slices grow with the class count,
// making the total grow superlinearly - the paper reports up to ~14000 s at
// 100 classes; the sweep here is scaled down accordingly.
#include "bench_common.hpp"
#include "scenarios/datacenter.hpp"

namespace {

using namespace vmn;
using bench::verify_all_expecting;
using scenarios::Datacenter;
using scenarios::DatacenterParams;
using verify::Outcome;
using verify::Engine;

void BM_Fig5_AllDataIsolation(benchmark::State& state) {
  DatacenterParams p;
  p.policy_groups = static_cast<int>(state.range(0));
  p.clients_per_group = 2;
  p.with_storage = true;
  Datacenter dc = make_datacenter(p);
  Engine v(dc.model);
  auto invs = dc.data_isolation_invariants();
  std::vector<Outcome> expected(invs.size(), Outcome::holds);
  verify_all_expecting(state, v, invs, expected, /*use_symmetry=*/true);
}
BENCHMARK(BM_Fig5_AllDataIsolation)->Arg(3)->Arg(5)->Arg(8)
    ->ArgNames({"classes"})->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
