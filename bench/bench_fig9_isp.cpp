// Figure 9: ISP with intrusion detection (section 5.3.3). (b) verification
// time per invariant versus subnet count at a fixed number of peering
// points; (c) versus peering-point count at a fixed subnet count. Slice
// verification stays flat on both axes; whole-network verification grows,
// faster on the peering axis (every peering point adds an IDS+firewall
// pipeline to the encoding - "the IDS model is more complex leading to a
// larger increase in problem size").
#include "bench_common.hpp"
#include "scenarios/isp.hpp"

namespace {

using namespace vmn;
using bench::verify_expecting;
using scenarios::Isp;
using scenarios::IspParams;
using verify::Outcome;
using verify::Engine;
using verify::VerifyOptions;

Isp make(int peering, int subnets) {
  IspParams p;
  p.peering_points = peering;
  p.subnets = subnets;
  p.hosts_per_subnet = 1;
  p.with_scrub_reroute = peering >= 2;
  return make_isp(p);
}

void run(benchmark::State& state, int peering, int subnets, bool use_slices) {
  Isp isp = make(peering, subnets);
  VerifyOptions opts;
  opts.use_slices = use_slices;
  opts.solver.timeout_ms = 600000;
  Engine v(isp.model, opts);
  // A private subnet's flow-isolation invariant (subnet 1 exists for every
  // generated size and is private).
  verify_expecting(state, v, isp.invariants()[1], Outcome::holds);
  state.counters["edge_nodes"] = benchmark::Counter(
      static_cast<double>(encode::all_edge_nodes(isp.model).size()));
}

// --- (b): sweep subnets at 3 peering points (paper: 5) ---------------------
void BM_Fig9b_Slice(benchmark::State& s) {
  run(s, 3, static_cast<int>(s.range(0)), true);
}
void BM_Fig9b_Full(benchmark::State& s) {
  run(s, 3, static_cast<int>(s.range(0)), false);
}
BENCHMARK(BM_Fig9b_Slice)->Arg(3)->Arg(9)->Arg(15)->Arg(24)
    ->ArgNames({"subnets"})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig9b_Full)->Arg(3)->Arg(9)->Arg(15)->Arg(24)
    ->ArgNames({"subnets"})->Unit(benchmark::kMillisecond)->Iterations(1);

// --- (c): sweep peering points at 9 subnets (paper: 75) --------------------
void BM_Fig9c_Slice(benchmark::State& s) {
  run(s, static_cast<int>(s.range(0)), 9, true);
}
void BM_Fig9c_Full(benchmark::State& s) {
  run(s, static_cast<int>(s.range(0)), 9, false);
}
BENCHMARK(BM_Fig9c_Slice)->Arg(1)->Arg(2)->Arg(3)->Arg(5)
    ->ArgNames({"peering"})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig9c_Full)->Arg(1)->Arg(2)->Arg(3)->Arg(5)
    ->ArgNames({"peering"})->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
