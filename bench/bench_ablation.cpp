// Ablations for the design choices DESIGN.md calls out:
//   - slicing on/off on a fixed invariant (the core scaling mechanism),
//   - symmetry on/off for whole-network verification (solver-call count),
//   - failure budget 0 vs 1 (the cost of verifying fault tolerance),
//   - encoding size versus slice size (axiom count as the work proxy).
#include "bench_common.hpp"
#include "scenarios/datacenter.hpp"
#include "scenarios/enterprise.hpp"

namespace {

using namespace vmn;
using bench::verify_all_expecting;
using bench::verify_expecting;
using scenarios::DatacenterParams;
using scenarios::EnterpriseParams;
using verify::Outcome;
using verify::Engine;
using verify::VerifyOptions;

void BM_Slicing(benchmark::State& state) {
  const bool use_slices = state.range(0) != 0;
  DatacenterParams p;
  p.policy_groups = 6;
  p.clients_per_group = 2;
  auto dc = make_datacenter(p);
  VerifyOptions opts;
  opts.use_slices = use_slices;
  Engine v(dc.model, opts);
  verify_expecting(state, v, dc.isolation_invariants()[0], Outcome::holds);
}
BENCHMARK(BM_Slicing)->Arg(1)->Arg(0)->ArgNames({"slices"})
    ->Unit(benchmark::kMillisecond)->Iterations(2);

void BM_Symmetry(benchmark::State& state) {
  const bool use_symmetry = state.range(0) != 0;
  EnterpriseParams p;
  p.subnets = 15;
  p.hosts_per_subnet = 2;
  auto ent = make_enterprise(p);
  Engine v(ent.model);
  std::vector<Outcome> expected(ent.invariants.size(), Outcome::holds);
  verify_all_expecting(state, v, ent.invariants, expected, use_symmetry);
}
BENCHMARK(BM_Symmetry)->Arg(1)->Arg(0)->ArgNames({"symmetry"})
    ->Unit(benchmark::kMillisecond)->Iterations(2);

void BM_FailureBudget(benchmark::State& state) {
  const int budget = static_cast<int>(state.range(0));
  DatacenterParams p;
  p.policy_groups = 4;
  p.clients_per_group = 2;
  auto dc = make_datacenter(p);
  VerifyOptions opts;
  opts.max_failures = budget;
  Engine v(dc.model, opts);
  verify_expecting(state, v, dc.isolation_invariants()[0], Outcome::holds);
}
BENCHMARK(BM_FailureBudget)->Arg(0)->Arg(1)->ArgNames({"max_failures"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
