// Figure 8: multi-tenant datacenter (EC2 security-group model,
// section 5.3.2) - per-invariant verification time versus tenant count for
// the three invariant families (Priv-Priv, Pub-Priv, Priv-Pub), slice-based
// versus whole-network.
//
// The vswitch firewalls are flow-parallel, so slices are fixed-size and the
// slice series is flat; whole-network encoding grows with every VM, so the
// full series climbs quickly (the paper reports 4+ orders of magnitude at
// 20 tenants). The full-network sweep is capped where single runs would
// dominate the suite.
#include "bench_common.hpp"
#include "scenarios/multitenant.hpp"

namespace {

using namespace vmn;
using bench::verify_expecting;
using scenarios::MultiTenant;
using scenarios::MultiTenantParams;
using verify::Outcome;
using verify::Engine;
using verify::VerifyOptions;

MultiTenant make(int tenants) {
  MultiTenantParams p;
  p.tenants = tenants;
  p.servers = tenants;
  p.public_vms_per_tenant = 5;
  p.private_vms_per_tenant = 5;
  return make_multitenant(p);
}

void run(benchmark::State& state, int which, bool use_slices) {
  MultiTenant mt = make(static_cast<int>(state.range(0)));
  VerifyOptions opts;
  opts.use_slices = use_slices;
  opts.solver.timeout_ms = 600000;
  Engine v(mt.model, opts);
  encode::Invariant inv = which == 0   ? mt.priv_priv()
                          : which == 1 ? mt.pub_priv()
                                       : mt.priv_pub();
  verify_expecting(state, v, inv, Outcome::holds);
  state.counters["edge_nodes"] = benchmark::Counter(
      static_cast<double>(encode::all_edge_nodes(mt.model).size()));
}

void BM_PrivPriv_Slice(benchmark::State& s) { run(s, 0, true); }
void BM_PubPriv_Slice(benchmark::State& s) { run(s, 1, true); }
void BM_PrivPub_Slice(benchmark::State& s) { run(s, 2, true); }
void BM_PrivPriv_Full(benchmark::State& s) { run(s, 0, false); }
void BM_PubPriv_Full(benchmark::State& s) { run(s, 1, false); }
void BM_PrivPub_Full(benchmark::State& s) { run(s, 2, false); }

BENCHMARK(BM_PrivPriv_Slice)->Arg(5)->Arg(10)->Arg(15)->Arg(20)
    ->ArgNames({"tenants"})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PubPriv_Slice)->Arg(5)->Arg(10)->Arg(15)->Arg(20)
    ->ArgNames({"tenants"})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PrivPub_Slice)->Arg(5)->Arg(10)->Arg(15)->Arg(20)
    ->ArgNames({"tenants"})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PrivPriv_Full)->Arg(2)->Arg(3)->Arg(4)->ArgNames({"tenants"})
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_PubPriv_Full)->Arg(2)->Arg(3)->Arg(4)->ArgNames({"tenants"})
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_PrivPub_Full)->Arg(2)->Arg(3)->Arg(4)->ArgNames({"tenants"})
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
