// Parallel scaling of the policy-scaling experiment (Fig 3 workload): the
// datacenter isolation batch is verified by the ParallelVerifier at
// 1/2/4/8 workers. Per-slice checks share no state, so on k cores the
// batch should approach k-fold speedup; the `speedup_vs_1` counter reports
// the measured ratio against the 1-worker wall time of the same batch
// (expect >= 1.5x at 4 workers on >= 4 physical cores; on fewer cores the
// ratio degrades toward 1 - check `hw_threads`).
//
// Symmetry is disabled inside the measurement so every invariant becomes an
// independent job (the honest worker-scaling shape); a separate family
// keeps symmetry on to show how dedup shrinks the queue first.
#include "bench_common.hpp"

#include <map>
#include <thread>

#include "core/rng.hpp"
#include "scenarios/datacenter.hpp"
#include "verify/parallel.hpp"

namespace {

using namespace vmn;
using scenarios::Datacenter;
using scenarios::DatacenterParams;
using scenarios::DcMisconfig;
using verify::Outcome;
using verify::ParallelOptions;
using verify::ParallelVerifier;

constexpr int kClasses = 8;

Datacenter make() {
  DatacenterParams p;
  p.policy_groups = kClasses;
  p.clients_per_group = 2;
  return make_datacenter(p);
}

// 1-worker wall time per (symmetry) config, measured on first use so the
// speedup counter can be derived without a separate manual run.
std::map<bool, double> baseline_ms;

double run_batch(const Datacenter& dc, std::size_t workers,
                 bool use_symmetry, benchmark::State& state) {
  ParallelOptions opts;
  opts.jobs = workers;
  opts.use_symmetry = use_symmetry;
  opts.verify.solver.seed = 1;
  ParallelVerifier v(dc.model, opts);
  const scenarios::Batch batch = dc.batch();
  verify::ParallelBatchResult r = v.verify_all(batch.invariants);
  for (std::size_t i = 0; i < batch.invariants.size(); ++i) {
    const Outcome expected =
        batch.expected_holds[i] ? Outcome::holds : Outcome::violated;
    if (r.results[i].outcome != expected) {
      state.SkipWithError("unexpected outcome in parallel batch");
      return 0.0;
    }
  }
  state.counters["jobs_executed"] =
      benchmark::Counter(static_cast<double>(r.jobs_executed));
  state.counters["dedup_hit_rate"] = benchmark::Counter(r.dedup_hit_rate);
  return static_cast<double>(r.total_time.count());
}

void scaling_bench(benchmark::State& state, bool use_symmetry) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  Datacenter dc = make();
  double wall_ms = 0;
  for (auto _ : state) {
    wall_ms = run_batch(dc, workers, use_symmetry, state);
    benchmark::DoNotOptimize(wall_ms);
  }
  if (workers == 1) baseline_ms[use_symmetry] = wall_ms;
  const double base = baseline_ms[use_symmetry];
  state.counters["speedup_vs_1"] =
      benchmark::Counter(base > 0 && wall_ms > 0 ? base / wall_ms : 0.0);
  state.counters["hw_threads"] = benchmark::Counter(
      static_cast<double>(std::thread::hardware_concurrency()));
}

void BM_ParallelScaling_Independent(benchmark::State& state) {
  scaling_bench(state, /*use_symmetry=*/false);
}
BENCHMARK(BM_ParallelScaling_Independent)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->ArgNames({"workers"})->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_ParallelScaling_WithDedup(benchmark::State& state) {
  scaling_bench(state, /*use_symmetry=*/true);
}
BENCHMARK(BM_ParallelScaling_WithDedup)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->ArgNames({"workers"})->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
