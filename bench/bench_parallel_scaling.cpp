// Parallel scaling of the policy-scaling experiment (Fig 3 workload): the
// datacenter isolation batch is verified by the Engine at
// 1/2/4/8 workers. Per-slice checks share no state, so on k cores the
// batch should approach k-fold speedup; the `speedup_vs_1` counter reports
// the measured ratio against the 1-worker wall time of the same batch
// (expect >= 1.5x at 4 workers on >= 4 physical cores; on fewer cores the
// ratio degrades toward 1 - check `hw_threads`).
//
// Symmetry is disabled inside the measurement so every invariant becomes an
// independent job (the honest worker-scaling shape); a separate family
// keeps symmetry on to show how dedup shrinks the queue first.
//
// The BM_BatchFastPath family measures the batch fast path itself: the same
// batch cold (fresh context per job, no cache), warm (live contexts reused
// across same-shape jobs) and cached (warm + pre-populated persistent
// result cache, i.e. the repeated-batch case). `speedup_vs_cold` is the
// headline number; every run also lands in BENCH_parallel.json with
// cold/warm wall times, cache hit counts and plan time.
#include "bench_common.hpp"

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <thread>

#include "core/rng.hpp"
#include "scenarios/datacenter.hpp"
#include "scenarios/multitenant.hpp"
#include "verify/faults.hpp"
#include "verify/engine.hpp"
#include "verify/parallel.hpp"

namespace {

using namespace vmn;
using scenarios::Datacenter;
using scenarios::DatacenterParams;
using scenarios::DcMisconfig;
using verify::Outcome;
using verify::ParallelOptions;
using verify::Engine;

constexpr int kClasses = 8;

Datacenter make() {
  DatacenterParams p;
  p.policy_groups = kClasses;
  p.clients_per_group = 2;
  return make_datacenter(p);
}

// 1-worker wall time per (symmetry) config, measured on first use so the
// speedup counter can be derived without a separate manual run.
std::map<bool, double> baseline_ms;

double run_batch(const Datacenter& dc, std::size_t workers,
                 bool use_symmetry, benchmark::State& state) {
  ParallelOptions opts;
  opts.jobs = workers;
  opts.use_symmetry = use_symmetry;
  opts.verify.solver.seed = 1;
  Engine v(dc.model, opts);
  const scenarios::Batch batch = dc.batch();
  verify::BatchResult r = v.run_batch(batch.invariants);
  for (std::size_t i = 0; i < batch.invariants.size(); ++i) {
    const Outcome expected =
        batch.expected_holds[i] ? Outcome::holds : Outcome::violated;
    if (r.results[i].outcome != expected) {
      state.SkipWithError("unexpected outcome in parallel batch");
      return 0.0;
    }
  }
  state.counters["jobs_executed"] =
      benchmark::Counter(static_cast<double>(r.pool.jobs_executed));
  state.counters["dedup_hit_rate"] = benchmark::Counter(r.pool.dedup_hit_rate);
  return static_cast<double>(r.total_time.count());
}

void scaling_bench(benchmark::State& state, bool use_symmetry) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  Datacenter dc = make();
  double wall_ms = 0;
  for (auto _ : state) {
    wall_ms = run_batch(dc, workers, use_symmetry, state);
    benchmark::DoNotOptimize(wall_ms);
  }
  if (workers == 1) baseline_ms[use_symmetry] = wall_ms;
  const double base = baseline_ms[use_symmetry];
  const double speedup = base > 0 && wall_ms > 0 ? base / wall_ms : 0.0;
  state.counters["speedup_vs_1"] = benchmark::Counter(speedup);
  state.counters["hw_threads"] = benchmark::Counter(
      static_cast<double>(std::thread::hardware_concurrency()));
  bench::BenchJson::instance().record(
      std::string("scaling/") + (use_symmetry ? "dedup" : "independent") +
          "/workers=" + std::to_string(workers),
      {{"wall_ms", wall_ms}, {"speedup_vs_1", speedup}});
}

void BM_ParallelScaling_Independent(benchmark::State& state) {
  scaling_bench(state, /*use_symmetry=*/false);
}
BENCHMARK(BM_ParallelScaling_Independent)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->ArgNames({"workers"})->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_ParallelScaling_WithDedup(benchmark::State& state) {
  scaling_bench(state, /*use_symmetry=*/true);
}
BENCHMARK(BM_ParallelScaling_WithDedup)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->ArgNames({"workers"})->Unit(benchmark::kMillisecond)->Iterations(1);

// --- batch fast path: cold vs warm vs warm+cached --------------------------

enum FastPathMode { kCold = 0, kWarm = 1, kCached = 2 };

const char* mode_name(int mode) {
  switch (mode) {
    case kCold: return "cold";
    case kWarm: return "warm";
    default: return "cached";
  }
}

double cold_wall_ms = 0;  // measured by the kCold run (registered first)

void BM_BatchFastPath(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  Datacenter dc = make();
  // The audit workload that exercises every fast-path layer: each group
  // pair is checked under TWO properties. The two invariants of a pair
  // slice to the same member set (one warm base encoding, two scoped
  // solves) while their canonical keys differ (two cache lines).
  scenarios::Batch batch;
  batch.name = "datacenter-audit";
  for (const encode::Invariant& iso : dc.isolation_invariants()) {
    batch.invariants.push_back(iso);
    batch.invariants.push_back(
        encode::Invariant::flow_isolation(iso.target, iso.other));
    // Clean datacenter: nothing is delivered across groups, so both the
    // node- and the stricter flow-isolation form hold.
    batch.expected_holds.push_back(true);
    batch.expected_holds.push_back(true);
  }

  ParallelOptions opts;
  opts.jobs = 2;
  opts.use_symmetry = true;
  opts.verify.solver.seed = 1;
  opts.verify.warm_solving = mode != kCold;
  // Scope-guarded so the temp dir disappears on every exit path, the
  // SkipWithError early returns included.
  struct TempDirGuard {
    std::string path;
    ~TempDirGuard() {
      if (path.empty()) return;
      std::error_code ec;
      std::filesystem::remove_all(path, ec);
    }
  } cache_dir;
  if (mode == kCached) {
    char cache_template[] = "/tmp/vmn-bench-cache-XXXXXX";
    if (mkdtemp(cache_template) == nullptr) {
      state.SkipWithError("mkdtemp failed");
      return;
    }
    cache_dir.path = cache_template;
    opts.verify.cache_dir = cache_template;
    // Populate outside the timing loop: the measured run is the *repeated*
    // batch, the incremental re-verification case.
    Engine warmup(dc.model, opts);
    benchmark::DoNotOptimize(warmup.run_batch(batch.invariants));
  }

  Engine v(dc.model, opts);
  double wall_ms = 0, plan_ms = 0, cache_hits = 0, warm_reuses = 0,
         solver_calls = 0;
  std::map<std::string, double> solve_tail;
  for (auto _ : state) {
    const auto wall_start = std::chrono::steady_clock::now();
    verify::BatchResult r = v.run_batch(batch.invariants);
    wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - wall_start)
                  .count();
    for (std::size_t i = 0; i < batch.invariants.size(); ++i) {
      const Outcome expected =
          batch.expected_holds[i] ? Outcome::holds : Outcome::violated;
      if (r.results[i].outcome != expected) {
        state.SkipWithError("unexpected outcome in fast-path batch");
        return;
      }
    }
    plan_ms = static_cast<double>(r.plan_time.count());
    cache_hits = static_cast<double>(r.cache_hits);
    warm_reuses = static_cast<double>(r.warm_reuses);
    solver_calls = static_cast<double>(r.solver_calls);
    bench::add_solve_percentiles(solve_tail, r.pool.solve_histogram);
    benchmark::DoNotOptimize(r);
  }
  if (mode == kCold) cold_wall_ms = wall_ms;
  const double speedup =
      cold_wall_ms > 0 && wall_ms > 0 ? cold_wall_ms / wall_ms : 0.0;
  state.counters["plan_ms"] = benchmark::Counter(plan_ms);
  state.counters["cache_hits"] = benchmark::Counter(cache_hits);
  state.counters["warm_reuses"] = benchmark::Counter(warm_reuses);
  state.counters["solver_calls"] = benchmark::Counter(solver_calls);
  state.counters["speedup_vs_cold"] = benchmark::Counter(speedup);
  std::map<std::string, double> values = {{"wall_ms", wall_ms},
                                          {"plan_ms", plan_ms},
                                          {"cache_hits", cache_hits},
                                          {"warm_reuses", warm_reuses},
                                          {"solver_calls", solver_calls},
                                          {"speedup_vs_cold", speedup}};
  values.insert(solve_tail.begin(), solve_tail.end());
  bench::BenchJson::instance().record(
      std::string("fastpath/") + mode_name(mode), values);
}
BENCHMARK(BM_BatchFastPath)
    ->Arg(kCold)->Arg(kWarm)->Arg(kCached)
    ->ArgNames({"mode"})->Unit(benchmark::kMillisecond)->Iterations(1);

// --- cross-isomorphic verdict reuse -----------------------------------------
//
// The datacenter's per-group jobs are the canonical cross-isomorphic
// workload: every group pair's slice is a renamed copy of the first. With
// warm solving on, the planner folds each equivalence class of isomorphic
// invariant-jobs onto ONE solver call and replays the verdict per binding
// (iso_verdict_reuses > 0, solver_calls well below planned jobs); any
// same-class job that still solves live is rebound onto the
// representative's encoding (iso_mapped/iso_reuses). --no-warm is the
// all-cold baseline the speedup is measured against. All counters land in
// BENCH_parallel.json, and ci.sh's bench smoke asserts the reuse actually
// happened.

void BM_IsoWarm(benchmark::State& state) {
  const bool warm = state.range(0) != 0;
  Datacenter dc = make();
  scenarios::Batch batch;
  batch.name = "datacenter-isowarm";
  for (const encode::Invariant& iso : dc.isolation_invariants()) {
    batch.invariants.push_back(iso);
    batch.expected_holds.push_back(true);
  }

  ParallelOptions opts;
  opts.jobs = 2;
  opts.use_symmetry = true;
  opts.verify.solver.seed = 1;
  opts.verify.warm_solving = warm;
  Engine v(dc.model, opts);
  double wall_ms = 0, plan_ms = 0, iso_mapped = 0, iso_reuses = 0,
         iso_verdicts = 0, solver_calls = 0, planned_jobs = 0, warm_binds = 0,
         enc_builds = 0, enc_reuses = 0;
  std::map<std::string, double> solve_tail;
  for (auto _ : state) {
    const auto wall_start = std::chrono::steady_clock::now();
    verify::BatchResult r = v.run_batch(batch.invariants);
    wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - wall_start)
                  .count();
    for (std::size_t i = 0; i < batch.invariants.size(); ++i) {
      const Outcome expected =
          batch.expected_holds[i] ? Outcome::holds : Outcome::violated;
      if (r.results[i].outcome != expected) {
        state.SkipWithError("unexpected outcome in iso-warm batch");
        return;
      }
    }
    if (warm && r.iso_verdict_reuses == 0 && r.iso_reuses == 0) {
      state.SkipWithError("iso-warm batch reported no cross-isomorphic reuse");
      return;
    }
    if (!warm &&
        (r.iso_mapped != 0 || r.iso_reuses != 0 || r.iso_verdict_reuses != 0)) {
      state.SkipWithError("cold baseline performed iso rebinding");
      return;
    }
    plan_ms = static_cast<double>(r.plan_time.count());
    iso_mapped = static_cast<double>(r.iso_mapped);
    iso_reuses = static_cast<double>(r.iso_reuses);
    iso_verdicts = static_cast<double>(r.iso_verdict_reuses);
    solver_calls = static_cast<double>(r.solver_calls);
    planned_jobs = static_cast<double>(r.pool.jobs_executed);
    warm_binds = static_cast<double>(r.warm_binds);
    enc_builds = static_cast<double>(r.encode_transfer_builds);
    enc_reuses = static_cast<double>(r.encode_transfer_reuses);
    bench::add_solve_percentiles(solve_tail, r.pool.solve_histogram);
    benchmark::DoNotOptimize(r);
  }
  static double iso_cold_wall_ms = 0;  // Arg(0) registers (and runs) first
  if (!warm) iso_cold_wall_ms = wall_ms;
  const double speedup =
      iso_cold_wall_ms > 0 && wall_ms > 0 ? iso_cold_wall_ms / wall_ms : 0.0;
  state.counters["iso_mapped"] = benchmark::Counter(iso_mapped);
  state.counters["iso_reuses"] = benchmark::Counter(iso_reuses);
  state.counters["iso_verdict_reuses"] = benchmark::Counter(iso_verdicts);
  state.counters["solver_calls"] = benchmark::Counter(solver_calls);
  state.counters["warm_binds"] = benchmark::Counter(warm_binds);
  state.counters["encode_transfer_builds"] = benchmark::Counter(enc_builds);
  state.counters["speedup_vs_cold"] = benchmark::Counter(speedup);
  std::map<std::string, double> values = {
      {"wall_ms", wall_ms},
      {"plan_ms", plan_ms},
      {"iso_mapped", iso_mapped},
      {"iso_reuses", iso_reuses},
      {"iso_verdict_reuses", iso_verdicts},
      {"solver_calls", solver_calls},
      {"planned_jobs", planned_jobs},
      {"warm_binds", warm_binds},
      {"encode_transfer_builds", enc_builds},
      {"encode_transfer_reuses", enc_reuses},
      {"speedup_vs_cold", speedup}};
  values.insert(solve_tail.begin(), solve_tail.end());
  bench::BenchJson::instance().record(
      std::string("isowarm/") + (warm ? "warm" : "cold"), values);
}
BENCHMARK(BM_IsoWarm)
    ->Arg(0)->Arg(1)
    ->ArgNames({"warm"})->Unit(benchmark::kMillisecond)->Iterations(1);

// --- fig8 batch under verdict merging ---------------------------------------
//
// The multitenant audit (Fig 8 workload) pins the *other* side of verdict
// merging: its per-tenant copies are already folded by canonical-key
// symmetry, and the remaining jobs are distinct classes whose candidate
// merges the planner refuses (firewall projection mismatch - the blockers
// `vmn verify --dedup-report` lists). The record pins planned jobs, solver
// calls, verdict replays AND the refused-merge count, so a projection
// migration that unlocks these merges shows up in the trajectory as a
// counter step, not a silent timing shift.

void BM_Fig8Batch(benchmark::State& state) {
  scenarios::MultiTenantParams p;
  p.tenants = 4;
  p.servers = 2;
  p.public_vms_per_tenant = 1;
  p.private_vms_per_tenant = 1;
  scenarios::MultiTenant mt = scenarios::make_multitenant(p);
  const scenarios::Batch batch = mt.batch();
  ParallelOptions opts;
  opts.jobs = 2;
  opts.verify.solver.seed = 1;
  Engine v(mt.model, opts);
  double wall_ms = 0, planned_jobs = 0, solver_calls = 0, iso_verdicts = 0,
         blocked_merges = 0, dedup_rate = 0;
  std::map<std::string, double> per_box_blocked;
  std::map<std::string, double> solve_tail;
  for (auto _ : state) {
    verify::BatchResult r = v.run_batch(batch.invariants);
    for (std::size_t i = 0; i < batch.invariants.size(); ++i) {
      const Outcome expected =
          batch.expected_holds[i] ? Outcome::holds : Outcome::violated;
      if (r.results[i].outcome != expected) {
        state.SkipWithError("unexpected outcome in fig8 batch");
        return;
      }
    }
    wall_ms = static_cast<double>(r.total_time.count());
    planned_jobs = static_cast<double>(r.pool.jobs_executed);
    solver_calls = static_cast<double>(r.solver_calls);
    iso_verdicts = static_cast<double>(r.iso_verdict_reuses);
    dedup_rate = r.pool.dedup_hit_rate;
    blocked_merges = 0;
    per_box_blocked.clear();
    for (const verify::MergeBlocker& b : r.pool.merge_blockers) {
      blocked_merges += static_cast<double>(b.count);
      // Per-box breakdown: structural refusals (no box type) land in
      // "structural" so the blocked_merges_* keys always sum to the total.
      const std::string box = b.box_type.empty() ? "structural" : b.box_type;
      per_box_blocked["blocked_merges_" + box] +=
          static_cast<double>(b.count);
    }
    bench::add_solve_percentiles(solve_tail, r.pool.solve_histogram);
    benchmark::DoNotOptimize(r);
  }
  state.counters["planned_jobs"] = benchmark::Counter(planned_jobs);
  state.counters["solver_calls"] = benchmark::Counter(solver_calls);
  state.counters["iso_verdict_reuses"] = benchmark::Counter(iso_verdicts);
  state.counters["blocked_merges"] = benchmark::Counter(blocked_merges);
  std::map<std::string, double> values = {
      {"wall_ms", wall_ms},
      {"planned_jobs", planned_jobs},
      {"solver_calls", solver_calls},
      {"iso_verdict_reuses", iso_verdicts},
      {"blocked_merges", blocked_merges},
      {"dedup_rate", dedup_rate}};
  values.insert(per_box_blocked.begin(), per_box_blocked.end());
  values.insert(solve_tail.begin(), solve_tail.end());
  bench::BenchJson::instance().record("fig8/batch", values);
}
BENCHMARK(BM_Fig8Batch)->Unit(benchmark::kMillisecond)->Iterations(1);

// --- backend comparison: threads vs forked worker processes -----------------
//
// The process backend pays fork + projected-spec re-parse + frame traffic
// per batch; `overhead_vs_thread` prices that isolation (and crash
// tolerance) against the in-process pool on the same workload. Expect a
// modest constant factor - the solver dominates per-job cost - which is
// the number the ROADMAP's multi-host dispatch builds on.

void BM_BatchBackend(benchmark::State& state) {
  const bool use_process = state.range(0) != 0;
  Datacenter dc = make();
  const scenarios::Batch batch = dc.batch();
  ParallelOptions opts;
  opts.jobs = 2;
  opts.verify.solver.seed = 1;
  opts.backend =
      use_process ? verify::Backend::process : verify::Backend::thread;
  Engine v(dc.model, opts);
  double wall_ms = 0;
  for (auto _ : state) {
    verify::BatchResult r = v.run_batch(batch.invariants);
    for (std::size_t i = 0; i < batch.invariants.size(); ++i) {
      const Outcome expected =
          batch.expected_holds[i] ? Outcome::holds : Outcome::violated;
      if (r.results[i].outcome != expected) {
        state.SkipWithError("unexpected outcome in backend batch");
        return;
      }
    }
    if (r.pool.workers_crashed != 0 || r.pool.jobs_abandoned != 0) {
      state.SkipWithError("process backend lost workers on a healthy run");
      return;
    }
    wall_ms = static_cast<double>(r.total_time.count());
    benchmark::DoNotOptimize(r);
  }
  static double thread_wall_ms = 0;  // Arg(0) is registered (and runs) first
  if (!use_process) thread_wall_ms = wall_ms;
  // 0 marks "baseline not measured" (e.g. --benchmark_filter ran only the
  // process arm); recording a fake 1.0 would hide real overhead in the
  // CI-uploaded perf trajectory.
  const double overhead = !use_process          ? 1.0
                          : thread_wall_ms > 0 ? wall_ms / thread_wall_ms
                                               : 0.0;
  state.counters["overhead_vs_thread"] = benchmark::Counter(overhead);
  bench::BenchJson::instance().record(
      std::string("backend/") + (use_process ? "process" : "thread"),
      {{"wall_ms", wall_ms}, {"overhead_vs_thread", overhead}});
}
BENCHMARK(BM_BatchBackend)
    ->Arg(0)->Arg(1)
    ->ArgNames({"process"})->Unit(benchmark::kMillisecond)->Iterations(1);

// --- fault resilience: crash-loop quarantine, unknown escalation ------------
//
// The self-healing counters the trajectory pins. faults/quarantine runs the
// process backend under a deterministic crash-job=0 plan: job 0 kills two
// workers, is quarantined by crash-loop attribution (its invariants - and
// only those - come back unknown), and every other verdict matches the
// fault-free expectation. faults/escalation runs the thread backend with
// every first solve forced unknown: each job escalates once (perturbed
// seed, longer timeout), every escalation is rescued, and the batch ends
// with zero unknowns. All counters here are fixed by (spec, plan, jobs=2)
// except workers_respawned, which is scheduling-dependent (a crash only
// respawns while work remains) - bench_diff treats it as a lower-bounded
// signal, not an exact counter.

void BM_FaultQuarantine(benchmark::State& state) {
  Datacenter dc = make();
  const scenarios::Batch batch = dc.batch();
  ParallelOptions opts;
  opts.jobs = 2;
  opts.verify.solver.seed = 1;
  opts.backend = verify::Backend::process;
  opts.verify.faults = verify::FaultPlan::parse("crash-job=0");
  Engine v(dc.model, opts);
  double wall_ms = 0, quarantined = 0, abandoned = 0, crashed = 0,
         respawned = 0, unknowns = 0, dropped = 0;
  for (auto _ : state) {
    verify::BatchResult r = v.run_batch(batch.invariants);
    unknowns = 0;
    for (std::size_t i = 0; i < batch.invariants.size(); ++i) {
      if (r.results[i].outcome == Outcome::unknown) {
        ++unknowns;
        continue;
      }
      const Outcome expected =
          batch.expected_holds[i] ? Outcome::holds : Outcome::violated;
      if (r.results[i].outcome != expected) {
        state.SkipWithError("verdict flipped under fault injection");
        return;
      }
    }
    if (r.degradation.quarantined != 1) {
      state.SkipWithError("crash-looping job was not quarantined");
      return;
    }
    wall_ms = static_cast<double>(r.total_time.count());
    quarantined = static_cast<double>(r.degradation.quarantined);
    abandoned = static_cast<double>(r.pool.jobs_abandoned);
    crashed = static_cast<double>(r.pool.workers_crashed);
    respawned = static_cast<double>(r.degradation.workers_respawned);
    dropped = static_cast<double>(r.degradation.cache_records_dropped);
    benchmark::DoNotOptimize(r);
  }
  state.counters["quarantined"] = benchmark::Counter(quarantined);
  state.counters["workers_crashed"] = benchmark::Counter(crashed);
  state.counters["workers_respawned"] = benchmark::Counter(respawned);
  state.counters["unknown_verdicts"] = benchmark::Counter(unknowns);
  bench::BenchJson::instance().record(
      "faults/quarantine",
      {{"wall_ms", wall_ms},
       {"quarantined", quarantined},
       {"jobs_abandoned", abandoned},
       {"workers_crashed", crashed},
       {"workers_respawned", respawned},
       {"unknown_verdicts", unknowns},
       {"cache_records_dropped", dropped}});
}
BENCHMARK(BM_FaultQuarantine)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_FaultEscalation(benchmark::State& state) {
  Datacenter dc = make();
  const scenarios::Batch batch = dc.batch();
  ParallelOptions opts;
  opts.jobs = 2;
  opts.verify.solver.seed = 1;
  opts.verify.faults = verify::FaultPlan::parse("solver-unknown=1");
  Engine v(dc.model, opts);
  double wall_ms = 0, escalations = 0, rescued = 0, unknowns = 0;
  for (auto _ : state) {
    verify::BatchResult r = v.run_batch(batch.invariants);
    unknowns = 0;
    for (std::size_t i = 0; i < batch.invariants.size(); ++i) {
      if (r.results[i].outcome == Outcome::unknown) {
        ++unknowns;
        continue;
      }
      const Outcome expected =
          batch.expected_holds[i] ? Outcome::holds : Outcome::violated;
      if (r.results[i].outcome != expected) {
        state.SkipWithError("verdict flipped under forced solver unknowns");
        return;
      }
    }
    wall_ms = static_cast<double>(r.total_time.count());
    escalations = static_cast<double>(r.degradation.escalations);
    rescued = static_cast<double>(r.degradation.escalations_rescued);
    benchmark::DoNotOptimize(r);
  }
  state.counters["escalations"] = benchmark::Counter(escalations);
  state.counters["escalations_rescued"] = benchmark::Counter(rescued);
  state.counters["unknown_verdicts"] = benchmark::Counter(unknowns);
  bench::BenchJson::instance().record(
      "faults/escalation",
      {{"wall_ms", wall_ms},
       {"escalations", escalations},
       {"escalations_rescued", rescued},
       {"unknown_verdicts", unknowns}});
}
BENCHMARK(BM_FaultEscalation)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

VMN_BENCH_JSON_MAIN("bench_parallel_scaling", "BENCH_parallel.json")
