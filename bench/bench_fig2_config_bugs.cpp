// Figure 2: time to verify one invariant for the three datacenter
// configuration-bug classes of section 5.1 - incorrect firewall rules
// (Rules), misconfigured redundant firewalls (Redundancy), and
// misconfigured redundant routing (Traversal) - in both the violated and
// the holds case.
//
// Topology: Fig 1 datacenter (firewalls, load balancer, IDPSes with
// redundant instances). The paper ran 1000 hosts; sizes here are scaled
// (slice-based verification makes the invariant time independent of network
// size, which bench_fig7/fig9 demonstrate explicitly).
#include "bench_common.hpp"
#include "core/rng.hpp"
#include "scenarios/datacenter.hpp"

namespace {

using namespace vmn;
using bench::verify_expecting;
using scenarios::Datacenter;
using scenarios::DatacenterParams;
using scenarios::DcMisconfig;
using verify::Outcome;
using verify::Engine;
using verify::VerifyOptions;

DatacenterParams params() {
  DatacenterParams p;
  p.policy_groups = 5;
  p.clients_per_group = 2;
  return p;
}

VerifyOptions failures(int k) {
  VerifyOptions o;
  o.max_failures = k;
  return o;
}

/// Finds a group whose isolation invariant is (not) broken.
encode::Invariant pick_invariant(const Datacenter& dc, bool broken) {
  auto invs = dc.isolation_invariants();
  const int groups = static_cast<int>(invs.size());
  for (int g = 0; g < groups; ++g) {
    if (dc.pair_broken(g, (g + 1) % groups) == broken) {
      return invs[static_cast<std::size_t>(g)];
    }
  }
  std::abort();  // generator guarantees both kinds exist
}

void BM_Rules(benchmark::State& state) {
  const bool violated = state.range(0) != 0;
  Datacenter dc = make_datacenter(params());
  Rng rng(42);
  inject_misconfig(dc, DcMisconfig::rules, rng, /*strength=*/2);
  Engine v(dc.model);
  verify_expecting(state, v, pick_invariant(dc, violated),
                   violated ? Outcome::violated : Outcome::holds);
}
BENCHMARK(BM_Rules)->Arg(1)->Arg(0)->ArgNames({"violated"})
    ->Unit(benchmark::kMillisecond);

void BM_Redundancy(benchmark::State& state) {
  const bool violated = state.range(0) != 0;
  Datacenter dc = make_datacenter(params());
  Rng rng(43);
  inject_misconfig(dc, DcMisconfig::redundancy, rng, /*strength=*/2);
  Engine v(dc.model, failures(1));
  verify_expecting(state, v, pick_invariant(dc, violated),
                   violated ? Outcome::violated : Outcome::holds);
}
BENCHMARK(BM_Redundancy)->Arg(1)->Arg(0)->ArgNames({"violated"})
    ->Unit(benchmark::kMillisecond);

void BM_Traversal(benchmark::State& state) {
  const bool violated = state.range(0) != 0;
  Datacenter dc = make_datacenter(params());
  if (violated) {
    Rng rng(44);
    inject_misconfig(dc, DcMisconfig::traversal, rng);
  }
  Engine v(dc.model, failures(1));
  verify_expecting(state, v, dc.traversal_invariants()[0],
                   violated ? Outcome::violated : Outcome::holds);
}
BENCHMARK(BM_Traversal)->Arg(1)->Arg(0)->ArgNames({"violated"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
