// Shared helpers for the figure-reproduction benchmarks.
//
// Every benchmark *asserts the expected verification outcome* - a bench that
// silently measured wrong answers would be meaningless - and reports the
// slice size and assertion count as counters alongside the timing.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "encode/invariant.hpp"
#include "verify/verifier.hpp"

namespace vmn::bench {

/// Verifies `inv` once inside the timing loop and checks the outcome.
inline void verify_expecting(benchmark::State& state,
                             const verify::Verifier& verifier,
                             const encode::Invariant& inv,
                             verify::Outcome expected) {
  std::size_t slice_size = 0;
  std::size_t assertions = 0;
  for (auto _ : state) {
    verify::VerifyResult r = verifier.verify(inv);
    if (r.outcome != expected) {
      state.SkipWithError(("unexpected outcome: " +
                           verify::to_string(r.outcome) + " (expected " +
                           verify::to_string(expected) + ")")
                              .c_str());
      return;
    }
    slice_size = r.slice_size;
    assertions = r.assertion_count;
    benchmark::DoNotOptimize(r);
  }
  state.counters["slice_nodes"] =
      benchmark::Counter(static_cast<double>(slice_size));
  state.counters["assertions"] =
      benchmark::Counter(static_cast<double>(assertions));
}

/// Verifies a whole invariant list (the "verify the entire network" mode of
/// Figs 3 and 5) and checks every outcome.
inline void verify_all_expecting(benchmark::State& state,
                                 const verify::Verifier& verifier,
                                 const std::vector<encode::Invariant>& invs,
                                 const std::vector<verify::Outcome>& expected,
                                 bool use_symmetry) {
  std::size_t solver_calls = 0;
  for (auto _ : state) {
    verify::BatchResult batch = verifier.verify_all(invs, use_symmetry);
    for (std::size_t i = 0; i < invs.size(); ++i) {
      if (batch.results[i].outcome != expected[i]) {
        state.SkipWithError("unexpected outcome in batch");
        return;
      }
    }
    solver_calls = batch.solver_calls;
    benchmark::DoNotOptimize(batch);
  }
  state.counters["invariants"] =
      benchmark::Counter(static_cast<double>(invs.size()));
  state.counters["solver_calls"] =
      benchmark::Counter(static_cast<double>(solver_calls));
}

}  // namespace vmn::bench
