// Shared helpers for the figure-reproduction benchmarks.
//
// Every benchmark *asserts the expected verification outcome* - a bench that
// silently measured wrong answers would be meaningless - and reports the
// slice size and assertion count as counters alongside the timing.
//
// Machine-readable perf trajectory: benchmarks record named numeric values
// into the process-wide BenchJson sink, and a VMN_BENCH_JSON_MAIN(...) main
// writes them as one JSON document (default path overridable with
// `--json <path>`), so BENCH_*.json files track cold/warm timings, cache
// hits and plan time from run to run.
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "encode/invariant.hpp"
#include "verify/engine.hpp"

namespace vmn::bench {

/// Process-wide sink of named numeric records, serialized by write() as
///   {"bench": "<name>", "records": [{"name": ..., "values": {...}}, ...]}
/// Names and keys come from the benchmarks themselves (no escaping needed);
/// non-finite values are clamped to 0 to keep the document valid JSON.
class BenchJson {
 public:
  static BenchJson& instance() {
    static BenchJson sink;
    return sink;
  }

  /// Last write wins per name: Google Benchmark re-invokes a benchmark
  /// while calibrating iteration counts, and only the final (longest,
  /// reported) run should land in the file.
  void record(const std::string& name,
              const std::map<std::string, double>& values) {
    for (Record& r : records_) {
      if (r.name == name) {
        r.values = values;
        return;
      }
    }
    records_.push_back(Record{name, values});
  }

  [[nodiscard]] bool write(const std::string& path,
                           const std::string& bench) const {
    std::ofstream out(path);
    if (!out) return false;
    out << "{\n  \"bench\": \"" << bench << "\",\n  \"records\": [\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      out << "    {\"name\": \"" << r.name << "\", \"values\": {";
      std::size_t k = 0;
      for (const auto& [key, value] : r.values) {
        char num[64];
        std::snprintf(num, sizeof num, "%.6g",
                      std::isfinite(value) ? value : 0.0);
        out << (k++ != 0 ? ", " : "") << "\"" << key << "\": " << num;
      }
      out << "}}" << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return static_cast<bool>(out);
  }

  [[nodiscard]] std::size_t size() const { return records_.size(); }

 private:
  struct Record {
    std::string name;
    std::map<std::string, double> values;
  };
  std::vector<Record> records_;
};

/// main() body for JSON-emitting benchmarks: strips `--json <path>` (the
/// remaining flags go to Google Benchmark untouched), runs the registered
/// benchmarks, then writes the BenchJson sink to `path` (default:
/// `default_json` in the working directory; `--json ""` suppresses).
inline int bench_json_main(int argc, char** argv, const char* bench_name,
                           const char* default_json) {
  std::string json_path = default_json;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered = static_cast<int>(args.size());
  benchmark::Initialize(&filtered, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty()) {
    if (!BenchJson::instance().write(json_path, bench_name)) {
      std::fprintf(stderr, "bench: failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("bench: wrote %s (%zu records)\n", json_path.c_str(),
                BenchJson::instance().size());
  }
  return 0;
}

}  // namespace vmn::bench

/// Defines main() for a bench that writes `default_json` (its CMake target
/// must NOT link benchmark::benchmark_main).
#define VMN_BENCH_JSON_MAIN(bench_name, default_json)              \
  int main(int argc, char** argv) {                                \
    return vmn::bench::bench_json_main(argc, argv, (bench_name),   \
                                       (default_json));            \
  }

namespace vmn::bench {

/// Verifies `inv` once inside the timing loop and checks the outcome.
/// Returns the mean per-verification wall time in ms (0 when skipped), so
/// JSON-emitting callers can record it.
inline double verify_expecting(benchmark::State& state,
                               verify::Engine& engine,
                               const encode::Invariant& inv,
                               verify::Outcome expected) {
  std::size_t slice_size = 0;
  std::size_t assertions = 0;
  double total_ms = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    verify::VerifyResult r = engine.run_one(inv);
    if (r.outcome != expected) {
      state.SkipWithError(("unexpected outcome: " +
                           verify::to_string(r.outcome) + " (expected " +
                           verify::to_string(expected) + ")")
                              .c_str());
      return 0;
    }
    slice_size = r.slice_size;
    assertions = r.assertion_count;
    total_ms += static_cast<double>(r.total_time.count());
    ++runs;
    benchmark::DoNotOptimize(r);
  }
  state.counters["slice_nodes"] =
      benchmark::Counter(static_cast<double>(slice_size));
  state.counters["assertions"] =
      benchmark::Counter(static_cast<double>(assertions));
  return runs != 0 ? total_ms / static_cast<double>(runs) : 0;
}

/// Solve-latency tail of a batch as record values: nearest-rank p50/p95
/// and max of the per-solver-call times (ms), straight off the pool's
/// TimingHistogram. Benchmarks merge these into their BENCH_*.json records
/// so the trajectory pins the tail, not just the mean wall time.
inline void add_solve_percentiles(std::map<std::string, double>& values,
                                  const verify::TimingHistogram& h) {
  values["solve_p50_ms"] = static_cast<double>(h.percentile(50).count());
  values["solve_p95_ms"] = static_cast<double>(h.percentile(95).count());
  values["solve_max_ms"] = static_cast<double>(h.percentile(100).count());
}

/// Verifies a whole invariant list (the "verify the entire network" mode of
/// Figs 3 and 5) and checks every outcome.
inline void verify_all_expecting(benchmark::State& state,
                                 verify::Engine& engine,
                                 const std::vector<encode::Invariant>& invs,
                                 const std::vector<verify::Outcome>& expected,
                                 bool use_symmetry) {
  std::size_t solver_calls = 0;
  for (auto _ : state) {
    verify::BatchResult batch = engine.run_batch(invs, use_symmetry);
    for (std::size_t i = 0; i < invs.size(); ++i) {
      if (batch.results[i].outcome != expected[i]) {
        state.SkipWithError("unexpected outcome in batch");
        return;
      }
    }
    solver_calls = batch.solver_calls;
    benchmark::DoNotOptimize(batch);
  }
  state.counters["invariants"] =
      benchmark::Counter(static_cast<double>(invs.size()));
  state.counters["solver_calls"] =
      benchmark::Counter(static_cast<double>(solver_calls));
}

}  // namespace vmn::bench
