// Figure 3: time to verify ALL datacenter invariants as a function of
// policy complexity (number of policy equivalence classes), for the three
// §5.1 scenario classes. One invariant per policy class is verified
// (symmetry removes the rest); slices keep the per-invariant cost flat, so
// total time grows linearly in the class count - the paper reports a slope
// of about three invariants per second on its hardware.
//
// The paper sweeps 25..1000 classes; the sweep here is scaled down so the
// whole suite finishes in CI-scale time (the linear shape is unaffected).
#include "bench_common.hpp"
#include "core/rng.hpp"
#include "scenarios/datacenter.hpp"

namespace {

using namespace vmn;
using bench::verify_all_expecting;
using scenarios::Datacenter;
using scenarios::DatacenterParams;
using scenarios::DcMisconfig;
using verify::Outcome;
using verify::Engine;
using verify::VerifyOptions;

Datacenter make(int classes) {
  DatacenterParams p;
  p.policy_groups = classes;
  p.clients_per_group = 2;
  return make_datacenter(p);
}

std::vector<Outcome> expected_isolation(const Datacenter& dc) {
  auto invs = dc.isolation_invariants();
  std::vector<Outcome> out;
  const int groups = static_cast<int>(invs.size());
  for (int g = 0; g < groups; ++g) {
    out.push_back(dc.pair_broken(g, (g + 1) % groups) ? Outcome::violated
                                                      : Outcome::holds);
  }
  return out;
}

void BM_Fig3_Rules(benchmark::State& state) {
  const int classes = static_cast<int>(state.range(0));
  Datacenter dc = make(classes);
  Rng rng(7);
  inject_misconfig(dc, DcMisconfig::rules, rng, classes / 4 + 1);
  Engine v(dc.model);
  // Misconfigured groups fall into their own policy classes (rule removal
  // breaks symmetry), so symmetric batching stays sound.
  verify_all_expecting(state, v, dc.isolation_invariants(),
                       expected_isolation(dc), /*use_symmetry=*/true);
}
BENCHMARK(BM_Fig3_Rules)->Arg(5)->Arg(10)->Arg(25)->Arg(50)
    ->ArgNames({"classes"})->Unit(benchmark::kMillisecond)->Iterations(2);

void BM_Fig3_Redundancy(benchmark::State& state) {
  const int classes = static_cast<int>(state.range(0));
  Datacenter dc = make(classes);
  Rng rng(8);
  inject_misconfig(dc, DcMisconfig::redundancy, rng, classes / 4 + 1);
  VerifyOptions opts;
  opts.max_failures = 1;
  Engine v(dc.model, opts);
  verify_all_expecting(state, v, dc.isolation_invariants(),
                       expected_isolation(dc), true);
}
BENCHMARK(BM_Fig3_Redundancy)->Arg(5)->Arg(10)->Arg(25)->Arg(50)
    ->ArgNames({"classes"})->Unit(benchmark::kMillisecond)->Iterations(2);

void BM_Fig3_Traversal(benchmark::State& state) {
  const int classes = static_cast<int>(state.range(0));
  Datacenter dc = make(classes);
  Rng rng(9);
  inject_misconfig(dc, DcMisconfig::traversal, rng);
  VerifyOptions opts;
  opts.max_failures = 1;
  Engine v(dc.model, opts);
  auto invs = dc.traversal_invariants();
  std::vector<Outcome> expected(invs.size(), Outcome::violated);
  verify_all_expecting(state, v, invs, expected, true);
}
BENCHMARK(BM_Fig3_Traversal)->Arg(5)->Arg(10)->Arg(25)->Arg(50)
    ->ArgNames({"classes"})->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace
